(* Anti-entropy bandwidth vs availability: the same deterministic
   kill schedule against a live mem-transport cluster, swept over
   repair intervals (plus a repair-off control).  Each row prices a
   setting: what the digest walks and block transfers cost in frames
   and bytes, against how many replica groups sit below r when the
   dust settles and what fraction of blocks a quorum-2 read can still
   serve.  Repair off shows the cost of doing nothing — every group
   that lost a replica stays degraded; shorter intervals buy faster
   convergence with more digest traffic. *)

module Engine = D2_simnet.Engine
module Topology = D2_simnet.Topology
module Key = D2_keyspace.Key
module Rng = D2_util.Rng
module Report = D2_util.Report
module Ring = D2_dht.Ring
module Mem = D2_net.Transport_mem
module Node = D2_net.Node.Make (D2_net.Transport_mem)
module Client = D2_net.Client.Make (D2_net.Transport_mem)
module Bootstrap = D2_net.Bootstrap
module Blockstore = D2_net.Blockstore

(* Swept settings: the control plus three-and-a-half octaves of
   interval; seconds are virtual, so paper scale costs nothing real. *)
let intervals = [ 0.0; 4.0; 2.0; 1.0; 0.5 ]

let replicas = 3
let horizon = 60.0

type row = {
  interval : float;
  sessions : int;
  frames : int;
  bytes : int;
  moved : int; (* copies installed by pull or push *)
  degraded : int; (* replica groups below r *)
  full_pct : float; (* blocks at full replication *)
  q2_pct : float; (* blocks a quorum-2 read can serve *)
}

(* One scripted run: load the cluster, kill two block owners twenty
   virtual seconds apart, let the horizon pass, then audit every
   block's replica group on the survivor ring. *)
let run_one scale ~interval =
  let n = Config.repair_nodes scale in
  let blocks = Config.repair_blocks scale in
  let engine = Engine.create () in
  let topology = Topology.create ~rng:(Rng.create 0x7090) ~n:(n + 1) () in
  let net = Mem.create_net ~engine ~topology ~loss:0.0 ~seed:0x11 () in
  let peers = Bootstrap.peers n in
  let config =
    {
      D2_net.Node.replicas;
      probe_interval = 0.5;
      rpc_timeout = 2.0;
      repair_interval = interval;
    }
  in
  let nodes =
    List.map
      (fun (i, id) ->
        Node.create (Mem.endpoint net ~node:i) ~config ~id ~peers ())
      peers
    |> Array.of_list
  in
  Array.iter Node.serve nodes;
  Engine.run engine ~until:3.0;
  let client =
    Client.create (Mem.endpoint net ~node:n) ~replicas ~rpc_timeout:5.0
      ~retries:8 ~seeds:(List.init n Fun.id) ()
  in
  let krng = Rng.create 0xbeef in
  let keys = Array.init blocks (fun _ -> Key.random krng) in
  Array.iter
    (fun key ->
      match Client.put client ~key ~data:("blk:" ^ Key.to_string key) with
      | `Ok _ -> ()
      | `Failed -> failwith "repair experiment: load put failed")
    keys;
  let full = Ring.create () in
  List.iter (fun (i, id) -> Ring.add full ~id ~node:i) peers;
  let a = Ring.successor full keys.(0) in
  let b =
    let rec pick i =
      let cand = Ring.successor full keys.(i) in
      if cand <> a then cand else pick (i + 1)
    in
    pick 1
  in
  Mem.kill net a;
  Engine.run engine ~until:(Engine.now engine +. 20.0);
  Mem.kill net b;
  Engine.run engine ~until:(Engine.now engine +. horizon);
  let dead = [ a; b ] in
  let live = Ring.create () in
  List.iter
    (fun (i, id) -> if not (List.mem i dead) then Ring.add live ~id ~node:i)
    peers;
  let degraded = ref 0 and fully = ref 0 and q2 = ref 0 in
  Array.iter
    (fun key ->
      let holders =
        Ring.successors live key replicas
        |> List.filter (fun i ->
               Blockstore.mem_block (Node.store nodes.(i)) ~key)
        |> List.length
      in
      if holders < replicas then incr degraded else incr fully;
      if holders >= 2 then incr q2)
    keys;
  let sessions = ref 0 and frames = ref 0 and bytes = ref 0 and moved = ref 0 in
  Array.iter
    (fun node ->
      let s = Node.repair_stats node in
      sessions := !sessions + s.D2_net.Node.sessions;
      frames := !frames + s.D2_net.Node.repair_frames;
      bytes := !bytes + s.D2_net.Node.repair_bytes;
      moved := !moved + s.D2_net.Node.pushed + s.D2_net.Node.pulled)
    nodes;
  Array.iter Node.stop nodes;
  let pct x = 100.0 *. float_of_int x /. float_of_int blocks in
  {
    interval;
    sessions = !sessions;
    frames = !frames;
    bytes = !bytes;
    moved = !moved;
    degraded = !degraded;
    full_pct = pct !fully;
    q2_pct = pct !q2;
  }

let run scale =
  let n = Config.repair_nodes scale in
  let blocks = Config.repair_blocks scale in
  let r =
    Report.create
      ~title:
        (Printf.sprintf
           "Repair bandwidth vs availability: %d nodes, %d blocks, 2 kills, \
            %.0f s horizon"
           n blocks horizon)
      ~columns:
        [
          "interval s";
          "sessions";
          "frames";
          "kB";
          "copies moved";
          "groups<r";
          "full %";
          "q2 avail %";
        ]
  in
  List.iter
    (fun interval ->
      let row = run_one scale ~interval in
      Report.add_row r
        [
          (if interval = 0.0 then "off" else Report.fmt_float ~decimals:1 interval);
          string_of_int row.sessions;
          string_of_int row.frames;
          Report.fmt_float ~decimals:1 (float_of_int row.bytes /. 1024.0);
          string_of_int row.moved;
          string_of_int row.degraded;
          Report.fmt_float ~decimals:1 row.full_pct;
          Report.fmt_float ~decimals:1 row.q2_pct;
        ])
    intervals;
  [ r ]
