(* Routing-policy bake-off (ROADMAP item 5): every policy the unified
   router compiles — rank fingers, Mercury/Symphony harmonic links,
   key-space Chord fingers, Kademlia b-way buckets — measured over the
   same rings through the same kernel, under both a uniform (hashed)
   and a locality-preserving (clustered, D2-style) ID distribution.

   Per (policy, distribution) cell: hop count (mean and p99), modelled
   lookup latency (per-hop RTT ~ Exp(1 ms) with a 2% chance of a
   250 ms slow hop — the tail the α-way path attacks), the α=2
   parallel-lookup kernel's effective hops and message cost, and the
   lookup-RPC rate when the client runs the §5 range cache over a
   task-local key stream (misses cost [hops + 1] RPCs, hits cost 0).

   The headline contrast is Chord under the clustered distribution:
   rank-space policies are oblivious to the ID layout (identical hops
   under both distributions, exactly ~log2 n links), while key-space
   fingers — probing all 62 scale levels to survive at all — grow
   their tables and lose at the hop tail (p99) where the skew stacks
   occupied scales; and because every Chord table is a function of the
   {e global} ID layout, churn forces full table rebuilds where rank
   policies restamp or patch (see Router.rebuild).  That asymmetry is
   why D2 can defragment the keyspace without giving up O(log n)
   lookups. *)

module Report = D2_util.Report
module Stats = D2_util.Stats
module Rng = D2_util.Rng
module Ring = D2_dht.Ring
module Router = D2_dht.Router
module Key = D2_keyspace.Key
module Lookup_cache = D2_cache.Lookup_cache

type dist = Uniform | Clustered

let dist_name = function
  | Uniform -> "uniform (hashed) IDs"
  | Clustered -> "locality-preserving (clustered) IDs"

(* A locality-preserving key: the 8 routing-prefix bytes are drawn
   with a heavy per-byte skew (u³ remap), the tail uniformly.  Because
   every byte is skewed the density varies {e self-similarly} — at
   every scale, as with real path-ordered file keys — which is the
   regime that stresses key-space fingers (Chord halves key distance,
   not rank distance); a two-level clustering would only cost Chord a
   constant. *)
let skewed_byte rng =
  let u = Rng.float rng 1.0 in
  int_of_float (255.99 *. (u *. u *. u))

let clustered_key rng =
  let b = Bytes.create Key.size in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr (skewed_byte rng))
  done;
  for i = 8 to Key.size - 1 do
    Bytes.set b i (Char.chr (Rng.int rng 256))
  done;
  Key.of_string (Bytes.unsafe_to_string b)

(* The same key's "task neighbourhood": identical routing prefix,
   fresh tail — consecutive blocks of one task, falling in (or next
   to) the range a lookup of any of them caches. *)
let task_key rng base =
  let b = Bytes.of_string (Key.to_string base) in
  for i = 8 to Key.size - 1 do
    Bytes.set b i (Char.chr (Rng.int rng 256))
  done;
  Key.of_string (Bytes.unsafe_to_string b)

let sample_key rng = function
  | Uniform -> Key.random rng
  | Clustered -> clustered_key rng

let mk_ring rng dist n =
  let ring = Ring.create () in
  for node = 0 to n - 1 do
    let rec fresh () =
      let id = sample_key rng dist in
      if Ring.id_taken ring id then fresh () else id
    in
    Ring.add ring ~id:(fresh ()) ~node
  done;
  ring

(* Per-hop RTT: exponential with 1 ms mean, except a 2% "slow hop"
   (dead or overloaded peer) costing a 250 ms timeout. *)
let hop_rtt_ms rng =
  if Rng.float rng 1.0 < 0.02 then 250.0
  else -.log (1.0 -. Rng.float rng 0.999) *. 1.0

let policies n =
  let k = max 2 (int_of_float (log (float_of_int n) /. log 2.0)) in
  [ Router.Fingers; Router.Harmonic k; Router.Chord; Router.Kademlia 2 ]

(* Task-local key stream for the cache interaction column: runs of
   [run_len] keys from one cluster (Clustered) or fully random keys
   (Uniform) — the same contrast as the paper's trace replays, where
   locality is what lets the range cache elide lookups. *)
let run_len = 32

let measure scale dist =
  let n = Config.bakeoff_nodes scale in
  let trials = Config.bakeoff_trials scale in
  let rng = Rng.create (Config.master_seed + 9000) in
  let ring = mk_ring rng dist n in
  let r =
    Report.create
      ~title:
        (Printf.sprintf "Routing bake-off: %s, %d nodes, %d lookups"
           (dist_name dist) n trials)
      ~columns:
        [
          "policy";
          "links";
          "hops";
          "hops p99";
          "lat p50 ms";
          "lat p99 ms";
          "a2 hops";
          "a2 msgs";
          "cache rpc/op";
        ]
  in
  List.iter
    (fun policy ->
      let router = Router.create ~ring ~policy ~rng:(Rng.copy rng) in
      (* Table-size cost: mean outgoing links per node, sampled. *)
      let link_sample = min n 256 in
      let links = ref 0 in
      for s = 0 to link_sample - 1 do
        let node = Ring.node_at ring (s * n / link_sample) in
        links := !links + List.length (Router.links_of router ~node)
      done;
      let mean_links = float_of_int !links /. float_of_int link_sample in
      let trng = Rng.create (Config.master_seed + 9100) in
      let hops = Array.make trials 0.0 in
      let lats = Array.make trials 0.0 in
      let a2_hops = ref 0 and a2_msgs = ref 0 in
      for i = 0 to trials - 1 do
        let src = Rng.int trng n in
        let key = sample_key trng dist in
        let h = Router.hops router ~src ~key in
        hops.(i) <- float_of_int h;
        (* hops forwards + the final reply, each a half-RTT pair *)
        let lat = ref (hop_rtt_ms trng) in
        for _ = 1 to h do
          lat := !lat +. hop_rtt_ms trng
        done;
        lats.(i) <- !lat;
        let ah, am = Router.route_alpha router ~src ~key ~alpha:2 in
        a2_hops := !a2_hops + ah;
        a2_msgs := !a2_msgs + am
      done;
      (* Cache interaction: a fresh range cache over a task-local
         stream; each miss resolves through the router ([hops + 1]
         RPCs) and caches the owner's range. *)
      let cache = Lookup_cache.create () in
      let crng = Rng.create (Config.master_seed + 9200) in
      let rpcs = ref 0 in
      let ops = trials in
      let i = ref 0 in
      while !i < ops do
        let burst = min run_len (ops - !i) in
        let keys =
          match dist with
          | Uniform -> Array.init burst (fun _ -> Key.random crng)
          | Clustered ->
              let base = clustered_key crng in
              Array.init burst (fun _ -> task_key crng base)
        in
        Array.iter
          (fun key ->
            if Lookup_cache.find cache ~now:0.0 key < 0 then begin
              let src = Rng.int crng n in
              rpcs := !rpcs + Router.hops router ~src ~key + 1;
              let owner = Ring.successor ring key in
              Lookup_cache.insert cache ~now:0.0
                ~lo:(Ring.predecessor_id ring ~node:owner)
                ~hi:(Ring.id_of ring ~node:owner)
                ~node:owner
            end)
          keys;
        i := !i + burst
      done;
      Array.sort compare hops;
      Array.sort compare lats;
      let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
      Report.add_row r
        [
          Router.policy_name policy;
          Report.fmt_float ~decimals:1 mean_links;
          Report.fmt_float ~decimals:2 (mean hops);
          Report.fmt_float ~decimals:1 (Stats.percentile hops 99.0);
          Report.fmt_float ~decimals:2 (Stats.percentile lats 50.0);
          Report.fmt_float ~decimals:1 (Stats.percentile lats 99.0);
          Report.fmt_float ~decimals:2
            (float_of_int !a2_hops /. float_of_int trials);
          Report.fmt_float ~decimals:2
            (float_of_int !a2_msgs /. float_of_int trials);
          Report.fmt_float ~decimals:2 (float_of_int !rpcs /. float_of_int ops);
        ])
    (policies n);
  r

let run scale = [ measure scale Uniform; measure scale Clustered ]
