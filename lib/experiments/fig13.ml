(* Figure 13: mean per-user lookup-cache miss rate per scenario —
   flat for D2 and traditional-file, growing with system size for the
   traditional DHT (§9.3). *)

module Report = D2_util.Report
module Keymap = D2_core.Keymap
module Perf = D2_core.Perf

let run scale =
  let r =
    Report.create ~title:"Figure 13: mean lookup cache miss rate"
      ~columns:[ "nodes"; "traditional"; "traditional-file"; "d2" ]
  in
  (* Miss rates are bandwidth-independent; report per system size. *)
  let bandwidth = List.hd (Config.perf_bandwidths scale) in
  List.iter
    (fun nodes ->
      let get mode = (Suites.perf_pass scale ~mode ~nodes ~bandwidth).Perf.miss_rate in
      Report.add_row r
        [
          string_of_int nodes;
          Report.fmt_pct (get Keymap.Traditional);
          Report.fmt_pct (get Keymap.Traditional_file);
          Report.fmt_pct (get Keymap.D2);
        ])
    (Config.perf_sizes scale);
  [ r ]

let cells = Fig9.cells
