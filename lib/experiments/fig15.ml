(* Figure 15: latency scatter vs the traditional-file DHT. *)

module Keymap = D2_core.Keymap

let run scale =
  [
    Fig14.scatter_summary scale ~baseline_mode:Keymap.Traditional_file ~which:`Seq
      ~title:"Figure 15a: access-group latency, D2 vs traditional-file (seq)";
    Fig14.scatter_summary scale ~baseline_mode:Keymap.Traditional_file ~which:`Para
      ~title:"Figure 15b: access-group latency, D2 vs traditional-file (para)";
  ]

let cells scale = Fig14.cells_for scale ~baseline_mode:Keymap.Traditional_file
