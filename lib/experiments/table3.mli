(** Table 3: daily churn ratios W_i/T_i and R_i/T_i (§10). *)

val run : Config.scale -> D2_util.Report.t list

val cells : Config.scale -> Suites.cell list
(** Datapoint dependencies of {!run}, for {!Registry.run_entries}. *)
