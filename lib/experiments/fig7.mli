(** Figure 7: task unavailability vs the inter-access threshold, all
    systems, several trials (§8.2). *)

val run : Config.scale -> D2_util.Report.t list

val cells : Config.scale -> Suites.cell list
(** Datapoint dependencies of {!run}, for {!Registry.run_entries}. *)
