(* Figure 17: load imbalance over time under the Webcache workload —
   the extreme-churn stress test (§10). *)

let run scale =
  [
    Fig16.series scale ~trace:`Webcache
      ~title:"Figure 17: load imbalance over time (Webcache)";
  ]

let cells scale =
  Suites.trace_cell scale `Web
  :: Suites.trace_cell scale `Webcache
  :: List.map
       (fun setup -> Suites.balance_cell scale ~trace:`Webcache ~setup)
       D2_core.Balance_sim.all_setups
