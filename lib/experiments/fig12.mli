(** Figure 12: per-user speedup distribution in the largest scenario (§9.3). *)

val run : Config.scale -> D2_util.Report.t list

val cells : Config.scale -> Suites.cell list
(** Datapoint dependencies of {!run}, for {!Registry.run_entries}. *)
