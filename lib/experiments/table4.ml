(* Table 4: mean write traffic W_i vs load-balancing (migration)
   traffic L_i per day (§10).  With pointers, Harvard's migration
   traffic is a fraction of its write traffic. *)

module Report = D2_util.Report
module Balance_sim = D2_core.Balance_sim

let rows r name (res : Balance_sim.result) =
  let ndays = Array.length res.Balance_sim.daily_written_mb in
  let total arr = Array.fold_left ( +. ) 0.0 arr in
  let row label arr =
    Report.add_row r
      ((name ^ " " ^ label)
      :: (List.init ndays (fun d -> Report.fmt_float ~decimals:1 arr.(d))
         @ [ Report.fmt_float ~decimals:1 (total arr) ]))
  in
  row "W (MB)" res.Balance_sim.daily_written_mb;
  row "L (MB)" res.Balance_sim.daily_migrated_mb;
  let tw = total res.Balance_sim.daily_written_mb in
  let tl = total res.Balance_sim.daily_migrated_mb in
  Report.add_row r
    [ name ^ " L/W"; (if tw > 0.0 then Report.fmt_float ~decimals:2 (tl /. tw) else "-") ]

let run scale =
  let harvard = Suites.balance_result scale ~trace:`Harvard ~setup:Balance_sim.D2 in
  let webcache = Suites.balance_result scale ~trace:`Webcache ~setup:Balance_sim.D2 in
  let ndays =
    max
      (Array.length harvard.Balance_sim.daily_written_mb)
      (Array.length webcache.Balance_sim.daily_written_mb)
  in
  let r =
    Report.create ~title:"Table 4: daily write traffic vs load-balancing traffic"
      ~columns:
        ("workload"
        :: (List.init ndays (fun d -> Printf.sprintf "day %d" (d + 1)) @ [ "total" ]))
  in
  rows r "Harvard" harvard;
  rows r "Webcache" webcache;
  [ r ]

let cells scale =
  [
    Suites.trace_cell scale `Harvard;
    Suites.trace_cell scale `Web;
    Suites.trace_cell scale `Webcache;
    Suites.balance_cell scale ~trace:`Harvard ~setup:Balance_sim.D2;
    Suites.balance_cell scale ~trace:`Webcache ~setup:Balance_sim.D2;
  ]
