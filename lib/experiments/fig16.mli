(** Figure 16: storage imbalance over time, Harvard workload (§10). *)

val series :
  Config.scale ->
  trace:[ `Harvard | `Webcache ] ->
  title:string ->
  D2_util.Report.t
(** Shared imbalance-series builder (also drives Figure 17). *)

val run : Config.scale -> D2_util.Report.t list

val cells : Config.scale -> Suites.cell list
(** Datapoint dependencies of {!run}, for {!Registry.run_entries}. *)
