(* Figure 16: storage load imbalance (normalized stddev of node load)
   over the Harvard week, for D2, traditional, traditional-file and
   traditional+Mercury (§10). *)

module Report = D2_util.Report
module Balance_sim = D2_core.Balance_sim

let series scale ~trace ~title =
  let results =
    List.map (fun setup -> Suites.balance_result scale ~trace ~setup)
      Balance_sim.all_setups
  in
  let r =
    Report.create ~title
      ~columns:
        ("time"
        :: List.map (fun x -> Balance_sim.setup_name x.Balance_sim.r_setup) results)
  in
  (* Print every 12 hours of trace time. *)
  let d2_samples = (List.hd results).Balance_sim.samples in
  let step = 12.0 *. 3600.0 in
  let next = ref 0.0 in
  Array.iteri
    (fun i (t, _) ->
      if t >= !next then begin
        next := !next +. step;
        Report.add_row r
          (Printf.sprintf "%.1fd" (t /. 86400.0)
          :: List.map
               (fun res ->
                 let samples = res.Balance_sim.samples in
                 if i < Array.length samples then
                   Report.fmt_float ~decimals:3 (snd samples.(i))
                 else "-")
               results)
      end)
    d2_samples;
  Report.add_row r
    ("max/mean load"
    :: List.map
         (fun res -> Report.fmt_float ~decimals:2 res.Balance_sim.max_over_mean)
         results);
  Report.add_row r
    ("balancer moves"
    :: List.map (fun res -> string_of_int res.Balance_sim.balancer_moves) results);
  r

let run scale =
  [ series scale ~trace:`Harvard ~title:"Figure 16: load imbalance over time (Harvard)" ]

let cells scale =
  Suites.trace_cell scale `Harvard
  :: List.map
       (fun setup -> Suites.balance_cell scale ~trace:`Harvard ~setup)
       Balance_sim.all_setups
