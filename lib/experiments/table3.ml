(* Table 3: daily data churn — bytes written (W_i) and removed (R_i)
   relative to the bytes present at the start of each day (T_i), for
   the Harvard and Webcache workloads (§10). *)

module Report = D2_util.Report
module Balance_sim = D2_core.Balance_sim

let ratio w t = if t <= 0.0 then "-" else Report.fmt_float ~decimals:2 (w /. t)

let rows r name (res : Balance_sim.result) =
  let ndays = Array.length res.Balance_sim.daily_written_mb in
  let row label get =
    Report.add_row r
      (label :: List.init ndays (fun d -> get d))
  in
  row (name ^ " W/T") (fun d ->
      ratio res.Balance_sim.daily_written_mb.(d) res.Balance_sim.total_at_day_start_mb.(d));
  row (name ^ " R/T") (fun d ->
      ratio res.Balance_sim.daily_removed_mb.(d) res.Balance_sim.total_at_day_start_mb.(d))

let run scale =
  let harvard = Suites.balance_result scale ~trace:`Harvard ~setup:Balance_sim.D2 in
  let webcache = Suites.balance_result scale ~trace:`Webcache ~setup:Balance_sim.D2 in
  let ndays =
    max
      (Array.length harvard.Balance_sim.daily_written_mb)
      (Array.length webcache.Balance_sim.daily_written_mb)
  in
  let r =
    Report.create ~title:"Table 3: daily churn ratios W_i/T_i and R_i/T_i"
      ~columns:("workload" :: List.init ndays (fun d -> Printf.sprintf "day %d" (d + 1)))
  in
  rows r "Harvard" harvard;
  rows r "Webcache" webcache;
  [ r ]

let cells scale =
  [
    Suites.trace_cell scale `Harvard;
    Suites.trace_cell scale `Web;
    Suites.trace_cell scale `Webcache;
    Suites.balance_cell scale ~trace:`Harvard ~setup:Balance_sim.D2;
    Suites.balance_cell scale ~trace:`Webcache ~setup:Balance_sim.D2;
  ]
