(** Routing-policy bake-off: the four compiled policies (rank fingers,
    harmonic links, key-space Chord, Kademlia b-way buckets) measured
    through the unified kernel over uniform and locality-preserving ID
    distributions — hops, modelled latency, α=2 parallel-lookup cost,
    and lookup-cache interaction per (policy, distribution). *)

val run : Config.scale -> D2_util.Report.t list
