(* Figure 9: DHT lookup messages per node vs system size, for the
   traditional, traditional-file and D2 systems (§9.2).  D2 cuts
   lookup traffic by an order of magnitude and, unlike the
   traditional system, becomes *more* efficient per node as the
   system grows. *)

module Report = D2_util.Report
module Keymap = D2_core.Keymap
module Perf = D2_core.Perf

let run scale =
  let r =
    Report.create
      ~title:"Figure 9: lookup messages per node during measurement windows"
      ~columns:[ "nodes"; "traditional"; "traditional-file"; "d2"; "trad/d2" ]
  in
  (* Lookup counts depend on caches and routing, not on access-link
     bandwidth, so one bandwidth's passes represent both. *)
  let bandwidth = List.hd (Config.perf_bandwidths scale) in
  List.iter
    (fun nodes ->
      let get mode =
        (Suites.perf_pass scale ~mode ~nodes ~bandwidth).Perf.lookup_msgs_per_node
      in
      let t = get Keymap.Traditional in
      let f = get Keymap.Traditional_file in
      let d = get Keymap.D2 in
      Report.add_row r
        [
          string_of_int nodes;
          Report.fmt_float ~decimals:1 t;
          Report.fmt_float ~decimals:1 f;
          Report.fmt_float ~decimals:1 d;
          (if d > 0.0 then Report.fmt_float ~decimals:1 (t /. d) else "inf");
        ])
    (Config.perf_sizes scale);
  [ r ]

let cells scale =
  let bandwidth = List.hd (Config.perf_bandwidths scale) in
  Suites.trace_cell scale `Harvard
  :: List.concat_map
       (fun nodes ->
         List.map
           (fun mode -> Suites.perf_cell scale ~mode ~nodes ~bandwidth)
           Suites.all_modes)
       (Config.perf_sizes scale)
