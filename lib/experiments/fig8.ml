(* Figure 8: unavailability experienced by individual users, ranked by
   decreasing unavailability (inter = 5 s).  D2's failures hit far
   fewer users — the §4.3 trade-off made visible. *)

module Report = D2_util.Report
module Keymap = D2_core.Keymap
module Availability = D2_core.Availability

let ranked scale ~mode =
  let trace = Data.harvard scale in
  let replay = Suites.availability_replay scale ~mode ~trial:0 in
  let st = Availability.task_unavailability ~trace ~replay ~inter:5.0 in
  st.Availability.per_user_unavailability

let run scale =
  let r =
    Report.create
      ~title:"Figure 8: per-user task unavailability, ranked (inter=5s, trial 0)"
      ~columns:[ "rank"; "traditional"; "traditional-file"; "d2" ]
  in
  let tr = ranked scale ~mode:Keymap.Traditional in
  let tf = ranked scale ~mode:Keymap.Traditional_file in
  let d2 = ranked scale ~mode:Keymap.D2 in
  let cell arr i =
    if i < Array.length arr && snd arr.(i) > 0.0 then Report.fmt_sci (snd arr.(i))
    else "-"
  in
  let affected arr =
    Array.fold_left (fun acc (_, u) -> if u > 0.0 then acc + 1 else acc) 0 arr
  in
  for i = 0 to 19 do
    Report.add_row r [ string_of_int (i + 1); cell tr i; cell tf i; cell d2 i ]
  done;
  Report.add_row r
    [
      "affected users";
      string_of_int (affected tr);
      string_of_int (affected tf);
      string_of_int (affected d2);
    ];
  [ r ]

let cells scale =
  Suites.trace_cell scale `Harvard
  :: List.map (fun mode -> Suites.avail_cell scale ~mode ~trial:0) Suites.all_modes
