(** Figure 3: mean nodes accessed per user-hour under traditional /
    ordered / lower-bound placements, all three workloads (§4.1). *)

val run : Config.scale -> D2_util.Report.t list

val cells : Config.scale -> Suites.cell list
(** Datapoint dependencies of {!run}, for {!Registry.run_entries}. *)
