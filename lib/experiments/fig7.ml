(* Figure 7: task unavailability for each system while varying the
   task inter-access threshold, over several trials with different
   node placements (§8.2). *)

module Report = D2_util.Report
module Keymap = D2_core.Keymap
module Availability = D2_core.Availability

let run scale =
  let trace = Data.harvard scale in
  let trials = Config.avail_trials scale in
  let r =
    Report.create
      ~title:
        (Printf.sprintf "Figure 7: task unavailability vs inter (%d trials, %d nodes)"
           trials (Config.avail_nodes scale))
      ~columns:[ "inter"; "system"; "min"; "mean"; "max" ]
  in
  List.iter
    (fun inter ->
      List.iter
        (fun mode ->
          let vals =
            List.init trials (fun trial ->
                let replay = Suites.availability_replay scale ~mode ~trial in
                (Availability.task_unavailability ~trace ~replay ~inter)
                  .Availability.unavailability)
          in
          let arr = Array.of_list vals in
          Report.add_row r
            [
              Printf.sprintf "%gs" inter;
              Keymap.mode_name mode;
              Report.fmt_sci (Array.fold_left Float.min infinity arr);
              Report.fmt_sci (D2_util.Stats.mean arr);
              Report.fmt_sci (Array.fold_left Float.max neg_infinity arr);
            ])
        Suites.all_modes)
    Config.avail_inters;
  [ r ]

let cells scale =
  Suites.trace_cell scale `Harvard
  :: List.concat_map
       (fun mode ->
         List.init (Config.avail_trials scale) (fun trial ->
             Suites.avail_cell scale ~mode ~trial))
       Suites.all_modes
