(* Figure 11: speedup of D2 over the traditional-file DHT (§9.3). *)

module Keymap = D2_core.Keymap

let run scale =
  Fig10.speedup_rows scale ~baseline_mode:Keymap.Traditional_file
    ~title:"Figure 11: speedup of D2 over the traditional-file DHT"

let cells scale = Fig10.cells_for scale ~baseline_mode:Keymap.Traditional_file
