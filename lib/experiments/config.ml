module Harvard = D2_trace.Harvard
module Hp = D2_trace.Hp
module Web = D2_trace.Web

type scale = Quick | Paper

let of_env () =
  match Sys.getenv_opt "D2_SCALE" with
  | Some "quick" -> Quick
  | Some "paper" | None -> Paper
  | Some other ->
      Printf.eprintf "warning: unknown D2_SCALE=%S, using paper\n%!" other;
      Paper

let scale_name = function Quick -> "quick" | Paper -> "paper"

let master_seed = 20070331

let harvard_params = function
  | Quick ->
      {
        Harvard.default_params with
        Harvard.users = 30;
        target_bytes = 48 * 1024 * 1024;
        days = 3.0;
      }
  | Paper ->
      { Harvard.default_params with Harvard.target_bytes = 160 * 1024 * 1024 }

let hp_params = function
  | Quick -> { Hp.default_params with Hp.apps = 15; days = 3.0; disk_blocks = 32768 }
  | Paper -> Hp.default_params

let web_params = function
  | Quick ->
      { Web.default_params with Web.clients = 40; days = 3.0; domains = 400 }
  | Paper -> Web.default_params

let fig3_nodes = function Quick -> 60 | Paper -> 250

let avail_nodes = function Quick -> 60 | Paper -> 247
let avail_trials = function Quick -> 2 | Paper -> 5
let avail_inters = [ 1.0; 5.0; 15.0; 60.0 ]

let perf_sizes = function Quick -> [ 100; 250 ] | Paper -> [ 200; 500; 1000 ]
let perf_base_nodes = function Quick -> 100 | Paper -> 200

let perf_bandwidths = function
  | Quick -> [ 1_500_000.0 ]
  | Paper -> [ 1_500_000.0; 384_000.0 ]

let balance_nodes = function Quick -> 50 | Paper -> 247

let bakeoff_nodes = function Quick -> 2048 | Paper -> 10240
let bakeoff_trials = function Quick -> 400 | Paper -> 2000

let repair_nodes = function Quick -> 12 | Paper -> 25
let repair_blocks = function Quick -> 80 | Paper -> 240
