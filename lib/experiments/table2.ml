(* Table 2: mean blocks and files accessed per task, and the mean
   number of distinct nodes a task touches in the traditional (block),
   traditional-file and D2 systems (§8.2). *)

module Report = D2_util.Report
module Task = D2_trace.Task
module Keymap = D2_core.Keymap
module Availability = D2_core.Availability

let run scale =
  let trace = Data.harvard scale in
  let r =
    Report.create ~title:"Table 2: mean objects and nodes accessed per task"
      ~columns:
        [ "inter"; "blocks"; "files"; "nodes block"; "nodes file"; "nodes D2" ]
  in
  let nodes_for mode inter =
    let replay = Suites.availability_replay scale ~mode ~trial:0 in
    let st = Availability.task_unavailability ~trace ~replay ~inter in
    st.Availability.mean_nodes_per_task
  in
  List.iter
    (fun inter ->
      let tasks = Task.segment trace ~inter () in
      Report.add_row r
        [
          Printf.sprintf "%gs" inter;
          Report.fmt_float ~decimals:0 (Task.mean_over tasks Task.distinct_blocks);
          Report.fmt_float ~decimals:0 (Task.mean_over tasks Task.distinct_files);
          Report.fmt_float ~decimals:1 (nodes_for Keymap.Traditional inter);
          Report.fmt_float ~decimals:1 (nodes_for Keymap.Traditional_file inter);
          Report.fmt_float ~decimals:1 (nodes_for Keymap.D2 inter);
        ])
    Config.avail_inters;
  [ r ]

let cells scale =
  Suites.trace_cell scale `Harvard
  :: List.map (fun mode -> Suites.avail_cell scale ~mode ~trial:0) Suites.all_modes
