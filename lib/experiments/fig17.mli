(** Figure 17: storage imbalance over time, Webcache workload (§10). *)

val run : Config.scale -> D2_util.Report.t list

val cells : Config.scale -> Suites.cell list
(** Datapoint dependencies of {!run}, for {!Registry.run_entries}. *)
