(** D2-Store: the replicated block store over the DHT ring (paper §3,
    §6).

    Every block is replicated on the [replicas] immediate successors
    of its key (the first is the primary).  When the load balancer
    moves a node's ID, or a node fails or recovers, the desired
    replica set of affected blocks changes; {e reconciliation} brings
    physical placement back in line:

    - a newly-desired holder first records a {e block pointer} and
      fetches the bytes only after [pointer_stabilization] (1 h in the
      paper) — if the desired set changes again before then, the
      pointer is dropped without any data moving, which is exactly how
      D2 avoids moving a block twice during cascaded load-balance
      splits (§6, Fig. 6).  With [use_pointers = false] the fetch is
      scheduled immediately (the ablation baseline);
    - an old holder keeps its copy until every desired holder has the
      bytes, then drops it;
    - migration and regeneration fetches are paced by the per-node
      [migration_bandwidth] (750 kbit/s in the paper's simulator).

    Node failures mark copies unavailable; once a failed node's blocks
    have fewer live copies than [replicas], regeneration fetches new
    copies onto the following successors.  Recovery restores the
    node's disk contents and trims the surplus.

    All behaviour is driven by a {!D2_simnet.Engine} virtual clock, so
    a whole simulated week runs in seconds, deterministically. *)

module Key = D2_keyspace.Key

type redundancy =
  | Replication
      (** whole-block copies: any single live copy serves a read (the
          paper's evaluated design, §3) *)
  | Erasure of int
      (** [Erasure m]: the block is split into [replicas] coded
          fragments of [size/m] bytes, any [m] of which reconstruct it
          — the §3 alternative D2 deliberately did not evaluate;
          storage per block is [replicas/m × size] instead of
          [replicas × size] *)

type config = {
  replicas : int;
  (** stored units per block: copies under {!Replication}, fragments
      under {!Erasure}; paper uses 3 (availability) and 4 (perf) *)
  redundancy : redundancy;
  use_pointers : bool;
  pointer_stabilization : float;  (** seconds; paper: 3600 *)
  migration_bandwidth : float;  (** bits/s per node; paper: 750_000 *)
  remove_delay : float;  (** seconds a remove is delayed; paper: 30 *)
  hybrid_replicas : bool;
  (** place one of the r replicas at the key's {e hashed} ring
      position instead of the r-th successor — the paper's §11
      future-work hybrid that defends the locality region against
      targeted node placement and spreads large-file read load.
      Default false (the paper's evaluated design). *)
}

val default_config : config

type t

type node_stats = {
  up : bool;
  physical_bytes : int;  (** bytes of data actually stored *)
  primary_bytes : int;  (** bytes this node is primary owner of *)
  pointer_count : int;  (** pointers not yet resolved to data *)
}

val create :
  engine:D2_simnet.Engine.t -> config:config -> ids:Key.t array -> t
(** One storage node per entry of [ids], all initially up. *)

val ring : t -> D2_dht.Ring.t
val engine : t -> D2_simnet.Engine.t
val config : t -> config
val node_count : t -> int
val node_stats : t -> int -> node_stats
val block_count : t -> int

(** {1 Client operations} *)

val put : t -> key:Key.t -> size:int -> ?data:string -> ?ttl:float -> unit -> unit
(** Insert (or overwrite, same key) a block; it is written directly to
    all current replica holders.  With [ttl], the block is
    automatically removed [ttl] seconds after its last {!refresh}
    (§3: removal can fail when nodes are partitioned, so blocks also
    expire unless refreshed). *)

val refresh : t -> key:Key.t -> ttl:float -> unit
(** Extend a block's expiry to [ttl] seconds from now.  No effect on
    blocks stored without a TTL or already removed. *)

val get : t -> key:Key.t -> string option option
(** [None] if no such live block; [Some data_opt] if present
    (data_opt is [None] for metadata-free simulation blocks). *)

val mem : t -> key:Key.t -> bool

val remove : t -> key:Key.t -> ?delay:float -> unit -> unit
(** Delete a block after [delay] (default [config.remove_delay]). *)

val available : t -> key:Key.t -> bool
(** True iff at least one up node physically holds the block — the
    availability predicate of the §8 simulator. *)

val owner_of : t -> key:Key.t -> int option
(** Current primary owner of a live block (the node a reader contacts
    first), or [None] if the block does not exist. *)

val find_owner : t -> key:Key.t -> int
(** [owner_of] as an allocation-free kernel: the owner or -1.  The
    simulators' hot paths and batched column resolution use this. *)

val physical_holders : t -> key:Key.t -> int list
(** Up-or-down nodes currently holding the bytes (for tests and for
    the performance simulator's placement queries). *)

val physical_holders_into : t -> key:Key.t -> int array -> int
(** Allocation-free {!physical_holders}: writes the same nodes in the
    same order into the scratch array and returns how many there are.
    The array must have at least {!node_count} slots.  This is the
    performance simulator's per-read hot path. *)

(** {1 Membership events} *)

val change_id : t -> node:int -> id:Key.t -> unit
(** Load-balancer ID reassignment (leave + rejoin, §6). Affected
    blocks are reconciled with pointers. *)

val fail : t -> node:int -> unit
(** Node crashes: its copies stop counting; regeneration of
    under-replicated blocks starts immediately, paced by bandwidth. *)

val recover : t -> node:int -> unit
(** Node returns with its disk intact; surplus replicas are trimmed. *)

val is_up : t -> node:int -> bool

(** {1 Traffic accounting} *)

val written_bytes : t -> float
(** Cumulative user-written bytes (puts). *)

val removed_bytes : t -> float
(** Cumulative bytes of removed blocks. *)

val migration_bytes : t -> float
(** Cumulative bytes moved for load balancing (ID changes). *)

val regeneration_bytes : t -> float
(** Cumulative bytes moved to restore replication after failures. *)

val median_primary_key : t -> node:int -> Key.t option
(** Median key (by byte volume) among the blocks the node is primary
    for — the split point a load-balancing joiner uses to take half of
    the node's load (§6, Fig. 5). [None] when the node owns nothing. *)

val check_invariants : t -> unit
(** Verify holder/byte bookkeeping consistency (tests; O(blocks)). *)
