/* Positional reads and durability syscalls for the segment store.
 *
 * pread(2) keeps the read path free of any shared file-offset state:
 * several domains can serve gets from the same segment fd without a
 * seek lock.  The buffer is an OCaml bytes value and the runtime lock
 * is NOT released around the read — segment reads are bounded (one
 * block, <= 1 MB) and almost always come from the page cache, so the
 * copy is far cheaper than a release/reacquire pair plus the malloc
 * staging buffer it would force (bytes may move once the lock is
 * dropped).
 *
 * fdatasync(2) can block for milliseconds on a real disk, so it does
 * release the runtime lock; it only touches the (immediate) fd. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <string.h>
#include <unistd.h>

CAMLprim value d2_segstore_pread(value fd, value buf, value off, value len,
                                 value file_off)
{
  ssize_t n;
  do {
    n = pread(Int_val(fd), Bytes_val(buf) + Long_val(off), Long_val(len),
              (off_t)Long_val(file_off));
  } while (n == -1 && errno == EINTR);
  if (n == -1) uerror("pread", Nothing);
  return Val_long(n);
}

CAMLprim value d2_segstore_fdatasync(value fd)
{
  int ret, cfd = Int_val(fd);
  caml_release_runtime_system();
#if defined(__APPLE__)
  ret = fsync(cfd);
#else
  ret = fdatasync(cfd);
#endif
  caml_acquire_runtime_system();
  if (ret == -1) uerror("fdatasync", Nothing);
  return Val_unit;
}

/* CRC-32C (Castagnoli, reflected, poly 0x82F63B78).
 *
 * Every record framed into the log pays one CRC over its payload; at
 * 8 KB wire blocks a byte-at-a-time OCaml loop costs ~30 us per block
 * — more than the rest of the put path combined.  Here: the x86
 * crc32 instruction when the CPU has SSE4.2 (~20 bytes/cycle),
 * otherwise slicing-by-8 tables (~1 GB/s and endian-safe).
 *
 * The argument is the *raw* (pre-final-xor) register value; the OCaml
 * wrapper applies the ~ masks so digests chain exactly like the
 * reference table implementation. */

#include <stdint.h>

static uint32_t crc32c_tab[8][256];
static int crc32c_ready = 0;

static void crc32c_init(void)
{
  int i, t;
  for (i = 0; i < 256; i++) {
    uint32_t c = (uint32_t)i;
    for (t = 0; t < 8; t++)
      c = (c & 1) ? (c >> 1) ^ 0x82F63B78u : c >> 1;
    crc32c_tab[0][i] = c;
  }
  for (i = 0; i < 256; i++) {
    uint32_t c = crc32c_tab[0][i];
    for (t = 1; t < 8; t++) {
      c = (c >> 8) ^ crc32c_tab[0][c & 0xff];
      crc32c_tab[t][i] = c;
    }
  }
  crc32c_ready = 1;
}

static uint32_t crc32c_sw(uint32_t crc, const unsigned char *p, size_t n)
{
  if (!crc32c_ready) crc32c_init();
  while (n && ((uintptr_t)p & 7)) {
    crc = (crc >> 8) ^ crc32c_tab[0][(crc ^ *p++) & 0xff];
    n--;
  }
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (n >= 8) {
    uint64_t v;
    memcpy(&v, p, 8);
    v ^= crc;
    crc = crc32c_tab[7][v & 0xff]
        ^ crc32c_tab[6][(v >> 8) & 0xff]
        ^ crc32c_tab[5][(v >> 16) & 0xff]
        ^ crc32c_tab[4][(v >> 24) & 0xff]
        ^ crc32c_tab[3][(v >> 32) & 0xff]
        ^ crc32c_tab[2][(v >> 40) & 0xff]
        ^ crc32c_tab[1][(v >> 48) & 0xff]
        ^ crc32c_tab[0][(v >> 56) & 0xff];
    p += 8;
    n -= 8;
  }
#endif
  while (n) {
    crc = (crc >> 8) ^ crc32c_tab[0][(crc ^ *p++) & 0xff];
    n--;
  }
  return crc;
}

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define D2_CRC32C_X86 1
#include <cpuid.h>

__attribute__((target("sse4.2")))
static uint32_t crc32c_hw(uint32_t crc, const unsigned char *p, size_t n)
{
  while (n && ((uintptr_t)p & 7)) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    n--;
  }
#if defined(__x86_64__)
  {
    uint64_t c = crc;
    while (n >= 8) {
      uint64_t v;
      memcpy(&v, p, 8);
      c = __builtin_ia32_crc32di(c, v);
      p += 8;
      n -= 8;
    }
    crc = (uint32_t)c;
  }
#endif
  while (n) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    n--;
  }
  return crc;
}

static int crc32c_have_hw(void)
{
  unsigned a, b, c, d;
  if (!__get_cpuid(1, &a, &b, &c, &d)) return 0;
  return (c >> 20) & 1; /* SSE4.2 */
}
#endif

static uint32_t (*crc32c_impl)(uint32_t, const unsigned char *, size_t) = 0;

static uint32_t crc32c_run(uint32_t crc, const unsigned char *p, size_t n)
{
  if (!crc32c_impl) {
#if defined(D2_CRC32C_X86)
    crc32c_impl = crc32c_have_hw() ? crc32c_hw : crc32c_sw;
#else
    crc32c_impl = crc32c_sw;
#endif
  }
  return crc32c_impl(crc, p, n);
}

/* Works for both string and Bytes.t (same runtime representation).
 * No runtime-lock release: the largest record payload is 1 MB, under
 * a microsecond on the hardware path. */
CAMLprim value d2_segstore_crc32c(value vraw, value vbuf, value vpos,
                                  value vlen)
{
  uint32_t c = (uint32_t)Long_val(vraw);
  c = crc32c_run(c, Bytes_val(vbuf) + Long_val(vpos), Long_val(vlen));
  return Val_long(c);
}
