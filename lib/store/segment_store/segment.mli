(** One append-only segment file ([seg-%08d.log]).

    The active segment owns a write buffer: {!append} only blits into
    it, and {!flush} pushes the whole buffer to the kernel as a single
    [write(2)] — optionally followed by one [fdatasync(2)] — which is
    the disk half of the group-commit trick: every record that arrived
    since the previous flush rides one syscall pair.  Reads are
    positional ([pread(2)], no shared offset), and an offset still
    inside the buffer is served from memory, so a node can read back a
    block it has not yet flushed. *)

module Key = D2_keyspace.Key

type t

val path : dir:string -> id:int -> string

val create : dir:string -> id:int -> t
(** Create the file fresh (truncating any leftover); append mode. *)

val open_existing : dir:string -> id:int -> t
(** Open an existing segment for reads, recovery truncation, and
    deletion bookkeeping.  Appending to it is a bug ({!append} raises):
    recovery always starts a new tail segment. *)

val id : t -> int

val length : t -> int
(** Logical length: bytes written to the file plus bytes buffered. *)

val file_length : t -> int
(** Bytes actually in the file (excludes the write buffer). *)

val synced : t -> int
(** Bytes covered by the last fdatasync. *)

val append : t -> kind:int -> key:Key.t -> data:string -> int
(** Stage one record; returns its offset.  No syscall happens here. *)

val flush : t -> fsync:bool -> unit
(** Drain the write buffer with one [write(2)]; with [fsync], follow
    with one [fdatasync(2)].  No-op when there is nothing to push. *)

val read_into : t -> off:int -> len:int -> Bytes.t -> dst_off:int -> unit
(** Read [len] bytes at logical offset [off] (file or buffer).
    @raise Failure on a short read — the index never points past the
    segment's logical end, so that means external truncation. *)

val read_all : t -> Bytes.t
(** The whole file image (recovery and compaction scans; the write
    buffer is not included — scanned segments have none). *)

val truncate_to : t -> int -> unit
(** Cut the file back to [len] bytes (drop a torn tail). *)

val datasync : t -> unit
(** Bare [fdatasync(2)] on the segment's fd — no bookkeeping, so a
    background flusher can call it without holding the store lock. *)

val mark_synced : t -> upto:int -> unit
(** Record (monotonically) that bytes up to [upto] are on stable
    storage; the post-{!datasync} half, called back under the lock. *)

val close : t -> unit
val unlink : dir:string -> id:int -> unit
