module Key = D2_keyspace.Key
module Cache = D2_cache.Block_cache

type fsync_policy = Always | Batch | Never

let fsync_policy_of_string = function
  | "always" -> Some Always
  | "batch" -> Some Batch
  | "never" -> Some Never
  | _ -> None

let fsync_policy_name = function
  | Always -> "always"
  | Batch -> "batch"
  | Never -> "never"

type config = {
  segment_bytes : int;
  fsync : fsync_policy;
  compact_live : float;
  cache_bytes : int;
}

let default_config =
  {
    segment_bytes = 64 lsl 20;
    fsync = Batch;
    compact_live = 0.5;
    cache_bytes = 64 lsl 20;
  }

type recovery = {
  r_checkpoint_blocks : int;
  r_segments : int;
  r_replayed_records : int;
  r_replayed_bytes : int;
  r_truncated_bytes : int;
  r_wall_s : float;
}

type seg_state = {
  seg : Segment.t;
  mutable live : int;  (** live record bytes (header included) *)
  mutable sealed : bool;
}

(* One victim mid-rewrite.  Compaction is incremental: each step
   rewrites at most a byte budget of the victim's image, so the poll
   loop never stalls long enough to trip a peer's RPC timeout (a
   synchronous 64 MB rewrite froze the daemon for hundreds of
   milliseconds — long enough to get this node falsely suspected). *)
type compaction = {
  c_st : seg_state;  (** the victim being rewritten *)
  mutable c_buf : Bytes.t;  (** scratch chunk, reused across steps *)
  mutable c_pos : int;  (** next unscanned offset in the victim *)
}

type t = {
  sdir : string;
  cfg : config;
  lock : Mutex.t;
  index : Log_index.t;
  segs : (int, seg_state) Hashtbl.t;
  mutable active : seg_state;
  bcache : Cache.bytes_cache;
  mutable next_seq : int;  (** next sequence to assign *)
  durable : int Atomic.t;
  mutable payload_bytes : int;
  mutable n_fsyncs : int;
  mutable n_rotations : int;
  mutable n_compactions : int;
  mutable n_checkpoints : int;
  mutable compact_check : bool;
  mutable compacting : compaction option;
  (* Background group-commit flusher (Batch policy only): the event
     loop signals [f_cv]; the thread stages the write buffer under the
     store lock, runs fdatasync with the lock released, and advances
     [durable] — so the disk settles without stalling the loop. *)
  f_mu : Mutex.t;
  f_cv : Condition.t;
  mutable f_req : bool;
  mutable f_stop : bool;
  mutable f_thread : Thread.t option;
  mutable durable_cb : unit -> unit;  (** fired after each background sync *)
  recovered : recovery option;
  mutable closed : bool;
}

let dir t = t.sdir
let config t = t.cfg
let recovery t = t.recovered
let ckpt_path dir = Filename.concat dir "index.ckpt"

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let check_open t = if t.closed then invalid_arg "Segment_store: closed"

(* The flusher thread advances the watermark without the store lock,
   so every writer must go through a monotone compare-and-set. *)
let rec advance_durable t seq =
  let cur = Atomic.get t.durable in
  if seq > cur && not (Atomic.compare_and_set t.durable cur seq) then
    advance_durable t seq

(* One fdatasync covering every byte the active segment holds; the
   group-commit primitive everything below builds on. *)
let sync_active t =
  let before = Segment.synced t.active.seg in
  Segment.flush t.active.seg ~fsync:true;
  if Segment.synced t.active.seg > before then t.n_fsyncs <- t.n_fsyncs + 1;
  (* Every assigned sequence lives in the active segment or an earlier
     sealed (already synced) one, so the watermark jumps to the last
     sequence handed out. *)
  advance_durable t (t.next_seq - 1)

(* Push the active segment's buffer out so the file holds every byte
   the index references.  Under [Never] this deliberately skips the
   fdatasync: that policy's contract is kernel writeback, and paying a
   multi-megabyte sync at every rotation would stall the serving loop
   for exactly the users who asked not to wait for the disk. *)
let settle_active t =
  match t.cfg.fsync with
  | Never -> Segment.flush t.active.seg ~fsync:false
  | Always | Batch -> sync_active t

let checkpoint_locked t =
  settle_active t;
  Log_index.save t.index ~path:(ckpt_path t.sdir)
    ~tail_seg:(Segment.id t.active.seg)
    ~tail_off:(Segment.file_length t.active.seg);
  t.n_checkpoints <- t.n_checkpoints + 1

(* Bytes in segment [sid] just died (overwrite or remove).  Flag a
   compaction check once a sealed segment crosses the threshold. *)
let note_dead t sid rlen =
  match Hashtbl.find_opt t.segs sid with
  | None -> ()
  | Some st ->
      st.live <- st.live - rlen;
      if st.sealed then
        let total = Segment.file_length st.seg in
        if st.live = 0 || float_of_int st.live < t.cfg.compact_live *. float_of_int total
        then t.compact_check <- true

let rotate_locked t =
  settle_active t;
  t.active.sealed <- true;
  t.n_rotations <- t.n_rotations + 1;
  let nid = Segment.id t.active.seg + 1 in
  let st = { seg = Segment.create ~dir:t.sdir ~id:nid; live = 0; sealed = false } in
  Hashtbl.replace t.segs nid st;
  let old = t.active in
  t.active <- st;
  (* Checkpointing here bounds tail replay to the (empty) new segment. *)
  checkpoint_locked t;
  if
    old.live = 0
    || float_of_int old.live
       < t.cfg.compact_live *. float_of_int (Segment.file_length old.seg)
  then t.compact_check <- true

let maybe_rotate_locked t =
  if Segment.length t.active.seg >= t.cfg.segment_bytes then rotate_locked t

let put t ~key ~data =
  if String.length data > Record.max_data then
    invalid_arg "Segment_store.put: block exceeds max record payload";
  locked t (fun () ->
      check_open t;
      let st = t.active in
      let off = Segment.append st.seg ~kind:Record.kind_put ~key ~data in
      let rlen = Record.encoded_len ~data_len:(String.length data) in
      (match
         Log_index.bind t.index ~key ~seg:(Segment.id st.seg) ~off ~len:rlen
       with
      | Some (oseg, olen) ->
          note_dead t oseg olen;
          t.payload_bytes <- t.payload_bytes - (olen - Record.header_len)
      | None -> ());
      st.live <- st.live + rlen;
      t.payload_bytes <- t.payload_bytes + String.length data;
      Cache.cache_store t.bcache key data;
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      (match t.cfg.fsync with
      | Always -> sync_active t
      | Never ->
          (* Durability is the kernel's problem; report it done. *)
          Atomic.set t.durable seq
      | Batch -> ());
      maybe_rotate_locked t;
      seq)

let remove t ~key =
  locked t (fun () ->
      check_open t;
      match Log_index.remove t.index key with
      | None -> (false, 0)
      | Some (oseg, olen) ->
          note_dead t oseg olen;
          t.payload_bytes <- t.payload_bytes - (olen - Record.header_len);
          Cache.cache_remove t.bcache key;
          let st = t.active in
          ignore (Segment.append st.seg ~kind:Record.kind_remove ~key ~data:"");
          (* The tombstone itself is dead weight from birth: it exists
             only for tail replay, so it never counts as live. *)
          let seq = t.next_seq in
          t.next_seq <- seq + 1;
          (match t.cfg.fsync with
          | Always -> sync_active t
          | Never -> Atomic.set t.durable seq
          | Batch -> ());
          maybe_rotate_locked t;
          (true, seq))

(* The cache probe runs before the store lock (the cache has its own):
   with domain-sharded serving, hot reads never contend with writers,
   flushes, or each other's index lookups.  A get racing a remove may
   return the pre-remove value — it linearizes just before it. *)
let get t ~key =
  check_open t;
  match Cache.cache_find t.bcache key with
  | Some data -> Some data
  | None ->
      locked t (fun () ->
          check_open t;
          let s = Log_index.find t.index key in
          if s < 0 then None
          else begin
            let sid = Log_index.seg t.index s in
            let off = Log_index.off t.index s in
            let rlen = Log_index.len t.index s in
            let st = Hashtbl.find t.segs sid in
            let dlen = rlen - Record.header_len in
            let buf = Bytes.create dlen in
            Segment.read_into st.seg ~off:(off + Record.header_len) ~len:dlen
              buf ~dst_off:0;
            let data = Bytes.unsafe_to_string buf in
            Cache.cache_store t.bcache key data;
            Some data
          end)

let mem t ~key = locked t (fun () -> Log_index.find t.index key >= 0)

let flush t =
  locked t (fun () ->
      if not t.closed then
        match t.cfg.fsync with
        | Always -> () (* every put synced inline; nothing pending *)
        | Batch -> sync_active t
        | Never -> Segment.flush t.active.seg ~fsync:false)

let needs_flush t =
  (not t.closed)
  &&
  match t.cfg.fsync with
  | Always -> false
  | Batch ->
      Atomic.get t.durable < t.next_seq - 1
      || Segment.synced t.active.seg < Segment.length t.active.seg
  | Never -> Segment.file_length t.active.seg < Segment.length t.active.seg

(* {1 Background group commit}

   One iteration = one group commit: stage everything buffered with a
   single write(2) under the store lock, capture how far that reaches
   (bytes and sequence), then fdatasync with the lock RELEASED — new
   puts keep appending while the disk settles, and they form the next
   group.  The commit rate self-clocks to the device: one fdatasync
   latency per batch, however many records arrived in the meantime. *)
let rec flusher_loop t =
  Mutex.lock t.f_mu;
  while not (t.f_req || t.f_stop) do
    Condition.wait t.f_cv t.f_mu
  done;
  t.f_req <- false;
  let stop = t.f_stop in
  Mutex.unlock t.f_mu;
  if not stop then begin
    let work =
      locked t (fun () ->
          if t.closed then None
          else begin
            Segment.flush t.active.seg ~fsync:false;
            let seg = t.active.seg in
            let upto = Segment.file_length seg in
            let covered = t.next_seq - 1 in
            if Segment.synced seg >= upto && Atomic.get t.durable >= covered
            then None
            else Some (seg, upto, covered)
          end)
    in
    (match work with
    | None -> ()
    | Some (seg, upto, covered) ->
        (* EBADF is possible if a rotation plus a full compaction
           retired this very segment in the window; that path already
           synced it, so the records are durable either way. *)
        (try Segment.datasync seg with Unix.Unix_error _ -> ());
        locked t (fun () ->
            if not t.closed then begin
              Segment.mark_synced seg ~upto;
              t.n_fsyncs <- t.n_fsyncs + 1;
              advance_durable t covered
            end);
        t.durable_cb ());
    flusher_loop t
  end

(* Request (don't wait for) durability of everything appended so far.
   Batch: wake the flusher and return — acks follow the [durable_seq]
   watermark.  Never: push the buffer (write-behind, no fsync).
   Always: every put already synced inline. *)
let flush_async t =
  match t.cfg.fsync with
  | Always -> ()
  | Never -> flush t
  | Batch ->
      Mutex.lock t.f_mu;
      t.f_req <- true;
      Condition.signal t.f_cv;
      Mutex.unlock t.f_mu

let stop_flusher t =
  match t.f_thread with
  | None -> ()
  | Some th ->
      Mutex.lock t.f_mu;
      t.f_stop <- true;
      Condition.signal t.f_cv;
      Mutex.unlock t.f_mu;
      Thread.join th;
      t.f_thread <- None

let on_durable t cb = t.durable_cb <- cb
let durable_seq t = Atomic.get t.durable
let last_seq t = t.next_seq - 1

let checkpoint t = locked t (fun () -> check_open t; checkpoint_locked t)

(* {1 Incremental compaction}

   A victim (sealed segment below the live threshold) is rewritten a
   bounded slice at a time: each step preads at most a chunk of the
   victim, decodes the records it fully contains, and re-appends the
   ones the index still points at into the active segment.  The cost
   per step — read, scan, relocate — is bounded by [compact_budget],
   so a 64 MB segment never stalls the serving loop the way a
   stop-the-world rewrite would (long enough to trip RPC timeouts and
   get the node falsely suspected).  When the cursor reaches the end,
   the relocations are made durable, the index is checkpointed (so
   full-scan recovery can never resurrect what the victim's tombstones
   killed), and only then is the file deleted — a crash in between
   recovers from the checkpoint and re-collects the victim later as a
   fully dead segment. *)

let compact_budget = 1 lsl 20
let compact_chunk_max = 8 lsl 20

(* Lowest-live-fraction sealed segment below the threshold (any dead
   byte qualifies under [force]) becomes the rewrite victim. *)
let pick_victim_locked t ~force =
  let best = ref None in
  Hashtbl.iter
    (fun _ st ->
      if st.sealed then begin
        let total = Segment.file_length st.seg in
        let frac =
          if total = 0 then 0.0
          else float_of_int st.live /. float_of_int total
        in
        let eligible =
          st.live = 0
          || frac < t.cfg.compact_live
          || (force && st.live < total)
        in
        if eligible then
          match !best with
          | Some (bf, _) when bf <= frac -> ()
          | _ -> best := Some (frac, st)
      end)
    t.segs;
  match !best with
  | None ->
      t.compact_check <- false;
      false
  | Some (_, st) ->
      t.compacting <- Some { c_st = st; c_buf = Bytes.create 0; c_pos = 0 };
      true

(* Advance the in-flight rewrite by [budget] scanned bytes; returns
   [true] when the victim was finished (checkpointed and deleted). *)
let compact_step_locked t ~budget =
  match t.compacting with
  | None -> false
  | Some c ->
      let st = c.c_st in
      let sid = Segment.id st.seg in
      let flen = Segment.file_length st.seg in
      (* Nothing live means nothing to relocate: skip the scan. *)
      if st.live = 0 then c.c_pos <- flen;
      let deadline = min flen (c.c_pos + max 1 (min budget flen)) in
      while c.c_pos < deadline && st.live > 0 do
        (* A record may straddle the chunk end; grow until at least one
           decodes (records are bounded by [Record.max_data]). *)
        let chunk =
          ref (min (flen - c.c_pos) (max 1 (min compact_chunk_max (deadline - c.c_pos))))
        in
        let progressed = ref false in
        while not !progressed do
          if Bytes.length c.c_buf < !chunk then c.c_buf <- Bytes.create !chunk;
          Segment.read_into st.seg ~off:c.c_pos ~len:!chunk c.c_buf ~dst_off:0;
          let pos = ref 0 in
          let stop = ref false in
          while not !stop do
            match Record.decode c.c_buf ~off:!pos ~avail:(!chunk - !pos) with
            | `Bad -> stop := true
            | `Record r ->
                (if r.Record.d_kind = Record.kind_put then begin
                   let s = Log_index.find t.index r.Record.d_key in
                   if
                     s >= 0
                     && Log_index.seg t.index s = sid
                     && Log_index.off t.index s = c.c_pos + !pos
                   then begin
                     let data =
                       Bytes.sub_string c.c_buf r.Record.d_data_off
                         r.Record.d_data_len
                     in
                     let off =
                       Segment.append t.active.seg ~kind:Record.kind_put
                         ~key:r.Record.d_key ~data
                     in
                     ignore
                       (Log_index.bind t.index ~key:r.Record.d_key
                          ~seg:(Segment.id t.active.seg)
                          ~off ~len:r.Record.d_total);
                     t.active.live <- t.active.live + r.Record.d_total;
                     st.live <- st.live - r.Record.d_total;
                     maybe_rotate_locked t
                   end
                 end);
                pos := !pos + r.Record.d_total;
                progressed := true
          done;
          if !progressed then c.c_pos <- c.c_pos + !pos
          else if c.c_pos + !chunk >= flen then begin
            (* Sealed segments are clean, so a record that still does
               not decode with the whole remainder in view cannot
               happen; never loop on it. *)
            c.c_pos <- flen;
            progressed := true
          end
          else chunk := min (flen - c.c_pos) (2 * !chunk)
        done
      done;
      if c.c_pos >= flen || st.live = 0 then begin
        checkpoint_locked t;
        Hashtbl.remove t.segs sid;
        Segment.close st.seg;
        Segment.unlink ~dir:t.sdir ~id:sid;
        t.n_compactions <- t.n_compactions + 1;
        t.compacting <- None;
        true
      end
      else false

let compact t ~force =
  locked t (fun () ->
      check_open t;
      let done_ = ref 0 in
      let continue = ref true in
      while !continue do
        if t.compacting = None && not (pick_victim_locked t ~force) then
          continue := false
        else if compact_step_locked t ~budget:max_int then incr done_
      done;
      !done_)

let maybe_compact t =
  if t.compacting = None && not t.compact_check then 0
  else
    locked t (fun () ->
        if t.closed then 0
        else begin
          if t.compacting = None then ignore (pick_victim_locked t ~force:false);
          if
            t.compacting <> None
            && compact_step_locked t ~budget:compact_budget
          then 1
          else 0
        end)

(* The flusher is joined BEFORE the store lock is taken: it may be
   waiting on that very lock, and it must not race the fd close. *)
let close t =
  stop_flusher t;
  locked t (fun () ->
      if not t.closed then begin
        (* A clean close makes everything durable whatever the policy
           ([Never] included — this is the one sync that mode pays). *)
        sync_active t;
        checkpoint_locked t;
        Hashtbl.iter (fun _ st -> Segment.close st.seg) t.segs;
        t.closed <- true
      end)

let crash t =
  stop_flusher t;
  locked t (fun () ->
      if not t.closed then begin
        let empty_active =
          Segment.file_length t.active.seg = 0
          && Segment.length t.active.seg = 0
        in
        let active_id = Segment.id t.active.seg in
        Hashtbl.iter (fun _ st -> Segment.close st.seg) t.segs;
        if empty_active then Segment.unlink ~dir:t.sdir ~id:active_id;
        t.closed <- true
      end)

let count t = locked t (fun () -> Log_index.count t.index)
let stored_bytes t = locked t (fun () -> t.payload_bytes)

let file_bytes t =
  locked t (fun () ->
      Hashtbl.fold (fun _ st acc -> acc + Segment.length st.seg) t.segs 0)

let segment_count t = locked t (fun () -> Hashtbl.length t.segs)

let iter t f =
  locked t (fun () ->
      check_open t;
      Log_index.iter t.index (fun ~key ~seg ~off ~len ->
          let st = Hashtbl.find t.segs seg in
          let dlen = len - Record.header_len in
          let buf = Bytes.create dlen in
          Segment.read_into st.seg ~off:(off + Record.header_len) ~len:dlen buf
            ~dst_off:0;
          f key (Bytes.unsafe_to_string buf)))

let iter_keys t f =
  locked t (fun () ->
      check_open t;
      Log_index.iter t.index (fun ~key ~seg:_ ~off:_ ~len:_ -> f key))

let fsyncs t = t.n_fsyncs
let rotations t = t.n_rotations
let compactions t = t.n_compactions
let checkpoints t = t.n_checkpoints
let cache t = t.bcache

(* {1 Startup: recovery} *)

let rec mkdirs d =
  if not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let segment_ids dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         match Scanf.sscanf_opt name "seg-%08d.log%!" (fun id -> id) with
         | Some id when Segment.path ~dir ~id = Filename.concat dir name ->
             Some id
         | _ -> None)
  |> List.sort compare

(* Replay one segment's records from [from] into the index; returns
   (records, bytes, truncated) where [truncated] > 0 means a torn or
   corrupt tail was cut off ([last] segments only — a bad record in an
   inner segment stops that segment's replay but deletes nothing). *)
let replay_segment index st ~from ~last =
  let img = Segment.read_all st.seg in
  let n = Bytes.length img in
  let pos = ref (min from n) in
  let records = ref 0 in
  let start = !pos in
  let stop = ref false in
  while (not !stop) && !pos < n do
    match Record.decode img ~off:!pos ~avail:(n - !pos) with
    | `Bad -> stop := true
    | `Record r ->
        let sid = Segment.id st.seg in
        (if r.Record.d_kind = Record.kind_put then
           ignore
             (Log_index.bind index ~key:r.Record.d_key ~seg:sid ~off:!pos
                ~len:r.Record.d_total)
         else ignore (Log_index.remove index r.Record.d_key));
        incr records;
        pos := !pos + r.Record.d_total
  done;
  let truncated = if !stop && last then n - !pos else 0 in
  if truncated > 0 then Segment.truncate_to st.seg !pos;
  (!records, !pos - start, truncated)

(* A checkpoint is only usable when every binding points inside a
   segment file we actually have — anything else (a deleted segment, an
   offset past the file end) forces the full-scan fallback. *)
let checkpoint_usable idx segs ~tail_seg ~tail_off =
  (* The log must reach the watermark the checkpoint claims to cover:
     a tail torn BELOW it (possible when checkpoints don't sync, i.e.
     the [Never] policy) would otherwise be trusted even though some
     of the records folded into the checkpoint — tombstones included —
     no longer exist.  A missing tail file with watermark 0 is the
     benign crash-right-after-rotation case (the empty active segment
     was unlinked). *)
  let tail_ok =
    match Hashtbl.find_opt segs tail_seg with
    | Some st -> tail_off <= Segment.file_length st.seg
    | None -> tail_off = 0
  in
  tail_ok
  &&
  let ok = ref true in
  Log_index.iter idx (fun ~key:_ ~seg ~off ~len ->
      match Hashtbl.find_opt segs seg with
      | Some st when off + len <= Segment.file_length st.seg -> ()
      | _ -> ok := false);
  !ok

let create ~dir ?(config = default_config) () =
  mkdirs dir;
  let t0 = Unix.gettimeofday () in
  let ids = segment_ids dir in
  let fresh = ids = [] && not (Sys.file_exists (ckpt_path dir)) in
  let segs : (int, seg_state) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun id ->
      Hashtbl.replace segs id
        { seg = Segment.open_existing ~dir ~id; live = 0; sealed = true })
    ids;
  let index, tail_seg, tail_off, ckpt_blocks =
    match
      if fresh then None else Log_index.load ~path:(ckpt_path dir)
    with
    | Some (idx, ts, off) when checkpoint_usable idx segs ~tail_seg:ts ~tail_off:off ->
        (idx, ts, off, Log_index.count idx)
    | _ -> (Log_index.create (), -1, 0, 0)
  in
  let last_id = match List.rev ids with [] -> -1 | id :: _ -> id in
  let replayed = ref 0 and replayed_bytes = ref 0 and truncated = ref 0 in
  List.iter
    (fun id ->
      if id >= tail_seg then begin
        let st = Hashtbl.find segs id in
        let from = if id = tail_seg then tail_off else 0 in
        if from <= Segment.file_length st.seg then begin
          let r, b, tr = replay_segment index st ~from ~last:(id = last_id) in
          replayed := !replayed + r;
          replayed_bytes := !replayed_bytes + b;
          truncated := !truncated + tr
        end
      end)
    ids;
  (* Liveness and payload totals come from the reconstructed index, not
     from replay arithmetic — exact whichever path got us here. *)
  let payload = ref 0 in
  Log_index.iter index (fun ~key:_ ~seg ~off:_ ~len ->
      (match Hashtbl.find_opt segs seg with
      | Some st -> st.live <- st.live + len
      | None -> ());
      payload := !payload + (len - Record.header_len));
  (* Recovery never appends to a recovered file: open a fresh tail. *)
  let active_id = last_id + 1 in
  let active =
    { seg = Segment.create ~dir ~id:active_id; live = 0; sealed = false }
  in
  Hashtbl.replace segs active_id active;
  let recovered =
    if fresh then None
    else
      Some
        {
          r_checkpoint_blocks = ckpt_blocks;
          r_segments = List.length ids;
          r_replayed_records = !replayed;
          r_replayed_bytes = !replayed_bytes;
          r_truncated_bytes = !truncated;
          r_wall_s = Unix.gettimeofday () -. t0;
        }
  in
  let t =
    {
      sdir = dir;
      cfg = config;
      lock = Mutex.create ();
      index;
      segs;
      active;
      bcache = Cache.bytes_cache ~capacity:config.cache_bytes;
      next_seq = 1;
      durable = Atomic.make 0;
      payload_bytes = !payload;
      n_fsyncs = 0;
      n_rotations = 0;
      n_compactions = 0;
      n_checkpoints = 0;
      compact_check = false;
      compacting = None;
      f_mu = Mutex.create ();
      f_cv = Condition.create ();
      f_req = false;
      f_stop = false;
      f_thread = None;
      durable_cb = ignore;
      recovered;
      closed = false;
    }
  in
  if config.fsync = Batch then t.f_thread <- Some (Thread.create flusher_loop t);
  (* A recovered store re-checkpoints immediately: the truncation (if
     any) and the fresh tail watermark become durable, and fully-dead
     recovered segments are flagged for collection. *)
  if not fresh then begin
    Mutex.lock t.lock;
    checkpoint_locked t;
    Hashtbl.iter
      (fun _ st ->
        if
          st.sealed
          && (st.live = 0
             || float_of_int st.live
                < config.compact_live *. float_of_int (Segment.file_length st.seg)
             )
        then t.compact_check <- true)
      t.segs;
    Mutex.unlock t.lock
  end;
  t
