module Key = D2_keyspace.Key

(* Slots: [segs.(s) >= 0] is live; a free slot has [segs.(s) = -1] and
   its successor in the free list threaded through [offs.(s)]. *)
type t = {
  tbl : int Key.Table.t;
  mutable keys : Key.t array;
  mutable segs : int array;
  mutable offs : int array;
  mutable lens : int array;
  mutable high : int;  (** slots ever touched *)
  mutable n : int;  (** live bindings *)
  mutable free_head : int;
}

let create ?(capacity = 1024) () =
  let capacity = max 16 capacity in
  {
    tbl = Key.Table.create capacity;
    keys = Array.make capacity Key.zero;
    segs = Array.make capacity (-1);
    offs = Array.make capacity 0;
    lens = Array.make capacity 0;
    high = 0;
    n = 0;
    free_head = -1;
  }

let count t = t.n
let find t k = match Key.Table.find_opt t.tbl k with Some s -> s | None -> -1
let seg t s = t.segs.(s)
let off t s = t.offs.(s)
let len t s = t.lens.(s)
let key t s = t.keys.(s)

let grow t =
  let cap = Array.length t.segs in
  let ncap = 2 * cap in
  let g mk a =
    let b = mk ncap in
    Array.blit a 0 b 0 cap;
    b
  in
  t.keys <- g (fun n -> Array.make n Key.zero) t.keys;
  t.segs <- g (fun n -> Array.make n (-1)) t.segs;
  t.offs <- g (fun n -> Array.make n 0) t.offs;
  t.lens <- g (fun n -> Array.make n 0) t.lens

let alloc_slot t =
  if t.free_head >= 0 then begin
    let s = t.free_head in
    t.free_head <- t.offs.(s);
    s
  end
  else begin
    if t.high = Array.length t.segs then grow t;
    let s = t.high in
    t.high <- t.high + 1;
    s
  end

let bind t ~key ~seg ~off ~len =
  match Key.Table.find_opt t.tbl key with
  | Some s ->
      let old = (t.segs.(s), t.lens.(s)) in
      t.segs.(s) <- seg;
      t.offs.(s) <- off;
      t.lens.(s) <- len;
      Some old
  | None ->
      let s = alloc_slot t in
      t.keys.(s) <- key;
      t.segs.(s) <- seg;
      t.offs.(s) <- off;
      t.lens.(s) <- len;
      Key.Table.replace t.tbl key s;
      t.n <- t.n + 1;
      None

let remove t k =
  match Key.Table.find_opt t.tbl k with
  | None -> None
  | Some s ->
      let old = (t.segs.(s), t.lens.(s)) in
      Key.Table.remove t.tbl k;
      t.keys.(s) <- Key.zero;
      t.segs.(s) <- -1;
      t.offs.(s) <- t.free_head;
      t.free_head <- s;
      t.n <- t.n - 1;
      Some old

let iter t f =
  for s = 0 to t.high - 1 do
    if t.segs.(s) >= 0 then
      f ~key:t.keys.(s) ~seg:t.segs.(s) ~off:t.offs.(s) ~len:t.lens.(s)
  done

(* {1 Checkpoints} *)

let magic = "D2SEGIDX1\n"

let add_u32 b v =
  Buffer.add_char b (Char.unsafe_chr (v land 0xff));
  Buffer.add_char b (Char.unsafe_chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.unsafe_chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.unsafe_chr ((v lsr 24) land 0xff))

let add_u48 b v =
  add_u32 b (v land 0xFFFFFFFF);
  Buffer.add_char b (Char.unsafe_chr ((v lsr 32) land 0xff));
  Buffer.add_char b (Char.unsafe_chr ((v lsr 40) land 0xff))

let get_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let get_u48 s off =
  get_u32 s off
  lor (Char.code s.[off + 4] lsl 32)
  lor (Char.code s.[off + 5] lsl 40)

let entry_len = Key.size + 4 + 6 + 4

let save t ~path ~tail_seg ~tail_off =
  let b = Buffer.create (64 + (t.n * entry_len)) in
  Buffer.add_string b magic;
  add_u32 b t.n;
  add_u32 b tail_seg;
  add_u48 b tail_off;
  iter t (fun ~key ~seg ~off ~len ->
      Buffer.add_string b (Key.to_string key);
      add_u32 b seg;
      add_u48 b off;
      add_u32 b len);
  let body = Buffer.contents b in
  let crc = Crc32c.string body ~pos:0 ~len:(String.length body) in
  add_u32 b crc;
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  in
  let data = Buffer.to_bytes b in
  let o = ref 0 in
  while !o < Bytes.length data do
    o := !o + Unix.write fd data !o (Bytes.length data - !o)
  done;
  (* The rename must not land before the bytes: fsync, then swap. *)
  (try Unix.fsync fd with Unix.Unix_error _ -> ());
  Unix.close fd;
  Unix.rename tmp path

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception _ -> None
  | s ->
      let ml = String.length magic in
      let fixed = ml + 4 + 4 + 6 in
      if String.length s < fixed + 4 || not (String.sub s 0 ml = magic) then
        None
      else
        let body_len = String.length s - 4 in
        let crc = get_u32 s body_len in
        if Crc32c.string s ~pos:0 ~len:body_len <> crc then None
        else
          let n = get_u32 s ml in
          let tail_seg = get_u32 s (ml + 4) in
          let tail_off = get_u48 s (ml + 8) in
          if body_len <> fixed + (n * entry_len) then None
          else begin
            let t = create ~capacity:(max 16 (2 * n)) () in
            let ok = ref true in
            for i = 0 to n - 1 do
              let e = fixed + (i * entry_len) in
              let key = Key.of_string (String.sub s e Key.size) in
              let seg = get_u32 s (e + Key.size) in
              let off = get_u48 s (e + Key.size + 4) in
              let len = get_u32 s (e + Key.size + 10) in
              if seg < 0 || len < Record.header_len then ok := false
              else ignore (bind t ~key ~seg ~off ~len)
            done;
            if !ok then Some (t, tail_seg, tail_off) else None
          end
