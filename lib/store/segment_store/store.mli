(** The durable block store: an append-only segment log under a
    group-commit window, a flat-array index checkpointed to disk, and
    out-of-core reads through a hot-block byte cache.

    {b Write path.}  {!put} and {!remove} append a CRC-framed record
    to the active segment's write buffer and return an {e append
    sequence number}; nothing touches the kernel yet.  {!flush} is the
    group commit: one [write(2)] pushes every record buffered since
    the previous flush, one [fdatasync(2)] makes them all durable, and
    {!durable_seq} jumps to the last buffered sequence — the caller
    acks every operation whose sequence is now covered.  The [fsync]
    policy trades durability for speed: [Batch] (the design point)
    amortizes the sync over the window, [Always] syncs inside every
    put (the honest lower bound), [Never] leaves durability to the
    kernel's writeback and reports everything durable immediately.

    {b Read path.}  A get probes the byte cache, then does one
    positional [pread(2)] at the (segment, offset, length) the index
    records — datasets larger than RAM serve at page-cache/disk speed
    with no per-block heap residency beyond the cache.

    {b Recovery.}  Startup loads the newest index checkpoint, replays
    only log records past its watermark, and truncates a torn or
    corrupt tail at the last record whose CRC checks out.  Recovery
    never throws on a damaged log — it yields exactly the durable
    prefix.  A fresh tail segment is always opened, so recovered bytes
    are never appended to.

    {b Compaction.}  Overwrites and removes strand dead bytes in
    sealed segments; once a sealed segment's live fraction drops below
    [compact_live], {!maybe_compact} rewrites its live records into
    the active segment, checkpoints, and deletes the file.

    Thread-safe: one store-wide mutex brackets every operation (reads
    included — compaction may retire a segment under a concurrent
    get); the domain-sharded runtime's contention unit is the store,
    which the block cache keeps off the disk path for hot reads. *)

module Key = D2_keyspace.Key

type fsync_policy = Always | Batch | Never

val fsync_policy_of_string : string -> fsync_policy option
val fsync_policy_name : fsync_policy -> string

type config = {
  segment_bytes : int;  (** rotation threshold (default 64 MB) *)
  fsync : fsync_policy;  (** default [Batch] *)
  compact_live : float;
      (** sealed segments below this live fraction are rewritten
          (default 0.5) *)
  cache_bytes : int;  (** hot-block byte-cache capacity (default 64 MB) *)
}

val default_config : config

type recovery = {
  r_checkpoint_blocks : int;  (** bindings loaded from the checkpoint *)
  r_segments : int;  (** segment files found on disk *)
  r_replayed_records : int;  (** log records applied past the watermark *)
  r_replayed_bytes : int;
  r_truncated_bytes : int;  (** torn/corrupt tail bytes cut off *)
  r_wall_s : float;
}

type t

val create : dir:string -> ?config:config -> unit -> t
(** Open (creating [dir] if needed) and recover whatever state the
    directory holds.  An empty directory is a fresh store. *)

val dir : t -> string
val config : t -> config

val recovery : t -> recovery option
(** Stats of the startup recovery; [None] for a fresh directory. *)

(** {1 Operations} *)

val put : t -> key:Key.t -> data:string -> int
(** Buffer a write; returns its append sequence (durable once
    [durable_seq] reaches it — immediately under [Always]/[Never]).
    @raise Invalid_argument if [data] exceeds {!Record.max_data}. *)

val remove : t -> key:Key.t -> bool * int
(** [(removed, seq)].  A remove of an absent key appends nothing and
    returns [(false, 0)] — sequence 0 is always durable. *)

val get : t -> key:Key.t -> string option
val mem : t -> key:Key.t -> bool

val flush : t -> unit
(** The group commit (see above), synchronously: when it returns,
    every buffered record is durable.  Cheap when nothing is pending. *)

val flush_async : t -> unit
(** Request the group commit without waiting for it.  Under [Batch]
    this wakes the store's background flusher thread — the write and
    the fdatasync happen off-thread while the caller keeps appending,
    and [durable_seq] advances when the disk settles.  This is what an
    event loop should call: the commit rate self-clocks to the device
    instead of stalling the loop one sync at a time.  Under [Never] it
    pushes the write buffer inline (no sync); under [Always] it is a
    no-op. *)

val needs_flush : t -> bool
(** Whether a flush would do work — buffered bytes or, under [Batch],
    acked-pending sequences. *)

val on_durable : t -> (unit -> unit) -> unit
(** Register a hook fired from the flusher thread after each
    background commit lands ([durable_seq] already advanced).  Wire it
    to the event loop's waker so deferred acks release the moment the
    disk settles rather than at the next timer tick.  Must be
    thread-safe; the default is a no-op. *)

val durable_seq : t -> int
val last_seq : t -> int

val checkpoint : t -> unit
(** Force an index checkpoint (flushes and syncs first, so the
    checkpoint never references bytes the log does not hold). *)

val maybe_compact : t -> int
(** Rewrite-and-delete every sealed segment whose live fraction sits
    below [compact_live]; returns how many were reclaimed.  Cheap
    (one flag test) when no segment crossed the threshold since the
    last call. *)

val compact : t -> force:bool -> int
(** [maybe_compact] without the flag gate; [force] also rewrites
    sealed segments holding any dead byte (tests). *)

val close : t -> unit
(** Flush, sync, checkpoint, close descriptors.  A closed store
    rejects further operations. *)

val crash : t -> unit
(** Test hook — abandon the store as [kill -9] would: descriptors are
    closed with {e no} flush, sync, or checkpoint; buffered records
    are lost.  (A never-written empty active segment is unlinked so
    crash-loops do not accrete empty files.) *)

(** {1 Introspection} *)

val count : t -> int

val stored_bytes : t -> int
(** Live payload bytes. *)

val file_bytes : t -> int
(** On-disk segment bytes, dead included. *)

val segment_count : t -> int
val iter : t -> (Key.t -> string -> unit) -> unit

val iter_keys : t -> (Key.t -> unit) -> unit
(** Visit every live key with no segment reads — an index-only walk,
    for callers that need the key set but not the payloads. *)

val fsyncs : t -> int
val rotations : t -> int
val compactions : t -> int
val checkpoints : t -> int
val cache : t -> D2_cache.Block_cache.bytes_cache
