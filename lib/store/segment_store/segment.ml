module Key = D2_keyspace.Key

external pread_stub :
  Unix.file_descr -> Bytes.t -> int -> int -> int -> int
  = "d2_segstore_pread"

external fdatasync_stub : Unix.file_descr -> unit = "d2_segstore_fdatasync"

type t = {
  sid : int;
  fd : Unix.file_descr;
  mutable wbuf : Bytes.t;
  mutable wlen : int;
  mutable written : int;  (** bytes pushed to the fd *)
  mutable synced_ : int;  (** bytes covered by the last fdatasync *)
  writable : bool;
}

let path ~dir ~id = Filename.concat dir (Printf.sprintf "seg-%08d.log" id)

let create ~dir ~id =
  let fd =
    Unix.openfile (path ~dir ~id)
      [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  in
  {
    sid = id;
    fd;
    wbuf = Bytes.create 65536;
    wlen = 0;
    written = 0;
    synced_ = 0;
    writable = true;
  }

let open_existing ~dir ~id =
  let fd =
    Unix.openfile (path ~dir ~id) [ Unix.O_RDWR; Unix.O_CLOEXEC ] 0o644
  in
  let len = (Unix.fstat fd).Unix.st_size in
  {
    sid = id;
    fd;
    wbuf = Bytes.create 0;
    wlen = 0;
    written = len;
    (* A reopened segment's bytes were either synced before the crash
       or are about to be re-validated record by record; recovery
       re-syncs after truncation. *)
    synced_ = len;
    writable = false;
  }

let id t = t.sid
let length t = t.written + t.wlen
let file_length t = t.written
let synced t = t.synced_

let reserve t n =
  if Bytes.length t.wbuf - t.wlen < n then begin
    let cap = max (2 * Bytes.length t.wbuf) (t.wlen + n) in
    let nb = Bytes.create cap in
    Bytes.blit t.wbuf 0 nb 0 t.wlen;
    t.wbuf <- nb
  end

let append t ~kind ~key ~data =
  if not t.writable then failwith "Segment.append: sealed segment";
  let n = Record.encoded_len ~data_len:(String.length data) in
  reserve t n;
  let w = Record.encode_into t.wbuf ~off:t.wlen ~kind ~key ~data in
  let off = t.written + t.wlen in
  t.wlen <- t.wlen + w;
  off

let write_fully fd buf off len =
  let o = ref off and remaining = ref len in
  while !remaining > 0 do
    let n = Unix.write fd buf !o !remaining in
    o := !o + n;
    remaining := !remaining - n
  done

let flush t ~fsync =
  if t.wlen > 0 then begin
    write_fully t.fd t.wbuf 0 t.wlen;
    t.written <- t.written + t.wlen;
    t.wlen <- 0;
    (* Shrink a burst-grown buffer back toward the floor. *)
    if Bytes.length t.wbuf > 1 lsl 20 then t.wbuf <- Bytes.create 65536
  end;
  if fsync && t.synced_ < t.written then begin
    fdatasync_stub t.fd;
    t.synced_ <- t.written
  end

let read_into t ~off ~len buf ~dst_off =
  if off < 0 || len < 0 || off + len > length t then
    invalid_arg "Segment.read_into: out of range";
  (* File part first, then whatever still sits in the write buffer. *)
  let file_n = max 0 (min len (t.written - off)) in
  if file_n > 0 then begin
    let got = ref 0 in
    while !got < file_n do
      let n =
        pread_stub t.fd buf (dst_off + !got) (file_n - !got) (off + !got)
      in
      if n = 0 then failwith "Segment.read_into: short read";
      got := !got + n
    done
  end;
  let buf_n = len - file_n in
  if buf_n > 0 then
    Bytes.blit t.wbuf (off + file_n - t.written) buf (dst_off + file_n) buf_n

let read_all t =
  let n = t.written in
  let buf = Bytes.create n in
  let got = ref 0 in
  while !got < n do
    let r = pread_stub t.fd buf !got (n - !got) !got in
    if r = 0 then failwith "Segment.read_all: short read";
    got := !got + r
  done;
  buf

let truncate_to t len =
  if len > t.written then invalid_arg "Segment.truncate_to";
  Unix.ftruncate t.fd len;
  t.written <- len;
  t.synced_ <- min t.synced_ len

(* The two halves of an off-thread sync: [datasync] is the bare
   fdatasync(2) (call it without the store lock — it only touches the
   fd), [mark_synced] the bookkeeping once the caller holds the lock
   again. *)
let datasync t = fdatasync_stub t.fd
let mark_synced t ~upto = if upto > t.synced_ then t.synced_ <- min upto t.written

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
let unlink ~dir ~id = try Unix.unlink (path ~dir ~id) with Unix.Unix_error _ -> ()
