module Key = D2_keyspace.Key

let kind_put = 1
let kind_remove = 2
let header_len = 4 + 4 + 1 + Key.size
let max_data = 1 lsl 20
let encoded_len ~data_len = header_len + data_len

let put_u32 b off v =
  Bytes.unsafe_set b off (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set b (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))

let get_u32 b off =
  Char.code (Bytes.unsafe_get b off)
  lor (Char.code (Bytes.unsafe_get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (off + 3)) lsl 24)

let encode_into buf ~off ~kind ~key ~data =
  let n = String.length data in
  if n > max_data then invalid_arg "Record.encode_into: payload too large";
  put_u32 buf off n;
  Bytes.unsafe_set buf (off + 8) (Char.unsafe_chr kind);
  Bytes.blit_string (Key.to_string key) 0 buf (off + 9) Key.size;
  Bytes.blit_string data 0 buf (off + header_len) n;
  let crc = Crc32c.bytes buf ~pos:(off + 8) ~len:(1 + Key.size + n) in
  put_u32 buf (off + 4) crc;
  header_len + n

type decoded = {
  d_kind : int;
  d_key : Key.t;
  d_data_off : int;
  d_data_len : int;
  d_total : int;
}

let decode buf ~off ~avail =
  if avail < header_len then `Bad
  else
    let n = get_u32 buf off in
    if n < 0 || n > max_data then `Bad
    else if avail < header_len + n then `Bad
    else
      let crc = get_u32 buf (off + 4) in
      if Crc32c.bytes buf ~pos:(off + 8) ~len:(1 + Key.size + n) <> crc then
        `Bad
      else
        let kind = Char.code (Bytes.unsafe_get buf (off + 8)) in
        if kind <> kind_put && kind <> kind_remove then `Bad
        else
          `Record
            {
              d_kind = kind;
              d_key = Key.of_string (Bytes.sub_string buf (off + 9) Key.size);
              d_data_off = off + header_len;
              d_data_len = n;
              d_total = header_len + n;
            }
