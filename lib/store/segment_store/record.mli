(** On-disk log-record framing.

    Every mutation the store accepts becomes one record appended to
    the active segment:

    {v
    u32 LE  payload length n
    u32 LE  CRC-32C over (kind byte, key, payload)
    u8      kind (1 = put, 2 = remove)
    64 B    key
    n  B    payload (empty for removes)
    v}

    The CRC sits in the header so a scanner decides a record's fate
    from one contiguous read: too few bytes for the header or the
    payload is a {e torn} tail (the crash cut a write short); a length
    above {!max_data} or a CRC mismatch is {e corrupt}.  Recovery
    treats both the same way — the log ends at the last record that
    checks out. *)

module Key = D2_keyspace.Key

val kind_put : int
val kind_remove : int

val header_len : int
(** 73 bytes: 4 + 4 + 1 + 64. *)

val max_data : int
(** 1 MB — far above the 8 KB wire block; a corrupt length field can
    never make the scanner allocate or skip unboundedly. *)

val encoded_len : data_len:int -> int
(** [header_len + data_len]. *)

val encode_into :
  Bytes.t -> off:int -> kind:int -> key:Key.t -> data:string -> int
(** Write one record at [off]; returns the encoded length.  The caller
    reserves [encoded_len] bytes first. *)

type decoded = {
  d_kind : int;
  d_key : Key.t;
  d_data_off : int;  (** payload offset within the scanned buffer *)
  d_data_len : int;
  d_total : int;  (** full record length, header included *)
}

val decode : Bytes.t -> off:int -> avail:int -> [ `Record of decoded | `Bad ]
(** Decode the record starting at [off] given [avail] readable bytes.
    [`Bad] covers torn and corrupt tails alike — by construction the
    scanner cannot trust anything at or past a bad record. *)
