(** The in-RAM block index: key → (segment, offset, record length).

    Mirrors the block-arena layout the simulator's cluster store uses:
    unboxed int columns addressed by a dense slot id, a free-list for
    reuse, a [Key.Table] interning keys to slots — no per-block boxing
    on the lookup path.  [len] is the {e full} record length (header
    included) so per-segment liveness accounting is exact byte-for-byte
    against file sizes.

    A {e checkpoint} serializes the whole index plus the log-tail
    watermark; startup loads it and replays only records past the
    watermark instead of scanning every segment. *)

module Key = D2_keyspace.Key

type t

val create : ?capacity:int -> unit -> t
val count : t -> int

val find : t -> Key.t -> int
(** Slot id, or [-1]. *)

val seg : t -> int -> int
val off : t -> int -> int
val len : t -> int -> int
val key : t -> int -> Key.t

val bind : t -> key:Key.t -> seg:int -> off:int -> len:int -> (int * int) option
(** Insert or overwrite; returns the displaced [(seg, len)] when the
    key was already bound (the caller moves those bytes from live to
    dead). *)

val remove : t -> Key.t -> (int * int) option
(** Drop a binding; returns the dead [(seg, len)] if it existed. *)

val iter : t -> (key:Key.t -> seg:int -> off:int -> len:int -> unit) -> unit

(** {1 Checkpoints} *)

val save : t -> path:string -> tail_seg:int -> tail_off:int -> unit
(** Atomically (write-tmp, fsync, rename) persist the index.  The
    watermark [(tail_seg, tail_off)] promises: every record at or past
    it is {e not} reflected in the saved bindings, and every record
    before it is — so recovery = load + replay the tail. *)

val load : path:string -> (t * int * int) option
(** [Some (index, tail_seg, tail_off)], or [None] when the file is
    missing, truncated, or fails its CRC — the caller falls back to a
    full log scan. *)
