(** CRC-32C (Castagnoli) — the checksum every log record and index
    checkpoint carries, so recovery can tell a torn or corrupt tail
    from durable data.  Computed in C (hardware crc32 on SSE4.2
    machines, slicing-by-8 otherwise); values are ints in [0, 2^32). *)

val string : ?crc:int -> string -> pos:int -> len:int -> int
(** Digest of [len] bytes of [s] starting at [pos].  Pass the previous
    digest as [crc] to extend it over a further slice. *)

val bytes : ?crc:int -> Bytes.t -> pos:int -> len:int -> int

val string_ref : ?crc:int -> string -> pos:int -> len:int -> int
(** Byte-at-a-time table-driven reference implementation — the oracle
    the stub is tested against. *)
