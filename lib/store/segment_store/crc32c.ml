(* Reflected CRC-32C, polynomial 0x82F63B78.  The digest loop lives in
   the C stub (hardware crc32 instruction when the CPU has SSE4.2,
   slicing-by-8 tables otherwise): an 8 KB block costs ~30 us
   byte-at-a-time in OCaml — dominating the put path it protects —
   and well under 1 us in the stub.  [string_ref] keeps the
   table-driven OCaml loop as the cross-check oracle for tests. *)

external crc32c_stub : int -> Bytes.t -> int -> int -> int
  = "d2_segstore_crc32c"
[@@noalloc]

let mask = 0xFFFFFFFF
let finish c = lnot c land mask

let string ?(crc = 0) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32c.string";
  finish (crc32c_stub (finish crc) (Bytes.unsafe_of_string s) pos len)

let bytes ?(crc = 0) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32c.bytes";
  finish (crc32c_stub (finish crc) b pos len)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0x82F63B78 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let string_ref ?(crc = 0) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32c.string_ref";
  let t = Lazy.force table in
  let c = ref (finish crc) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
         lxor (!c lsr 8)
  done;
  finish !c
