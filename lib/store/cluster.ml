module Key = D2_keyspace.Key
module KTbl = Key.Table
module Ring = D2_dht.Ring
module Engine = D2_simnet.Engine

let src = Logs.Src.create "d2.store" ~doc:"D2-Store block placement events"

module Log = (val Logs.src_log src : Logs.LOG)

type redundancy = Replication | Erasure of int

type config = {
  replicas : int;
  redundancy : redundancy;
  use_pointers : bool;
  pointer_stabilization : float;
  migration_bandwidth : float;
  remove_delay : float;
  hybrid_replicas : bool;
}

let default_config =
  {
    replicas = 3;
    redundancy = Replication;
    use_pointers = true;
    pointer_stabilization = 3600.0;
    migration_bandwidth = 750_000.0;
    remove_delay = 30.0;
    hybrid_replicas = false;
  }

(* How many live stored units a read needs, and how big one unit is.
   Under replication every copy is the whole block; under [Erasure m]
   each of the [replicas] units is a size/m fragment and any m of
   them reconstruct the block (§3). *)
let units_needed cfg = match cfg.redundancy with Replication -> 1 | Erasure m -> m

let unit_size cfg size =
  match cfg.redundancy with
  | Replication -> size
  | Erasure m -> (size + m - 1) / m

type why = Migration | Regen

type node_stats = {
  up : bool;
  physical_bytes : int;
  primary_bytes : int;
  pointer_count : int;
}

(* {1 The block arena}

   Blocks live in a struct-of-arrays arena: a block is a dense integer
   id indexing unboxed columns (key, size, owner, expiry, liveness,
   holder set).  The [index] table interns a key to its id once at
   [put]; every event afterwards — expiry, pointer stabilization,
   paced fetch arrival, delayed delete — carries just [(action tag,
   id, generation)] through the engine's timer wheel instead of a
   closure over a boxed record.

   Slots are recycled through a free list; [gens.(id)] is bumped every
   time a slot is freed, and every posted cell embeds the generation
   it was created under.  A cell whose generation no longer matches
   targets a deleted (possibly re-used) slot and is dropped — the
   arena equivalent of the old closures finding [block.dead] set.

   A block's holder set is a small int array ([(node lsl 1) lor
   physical] per entry) kept in newest-first insertion order — the
   exact order the previous holder {e list} had, which is observable
   through {!physical_holders}. *)

type t = {
  cfg : config;
  engine : Engine.t;
  ring : Ring.t;
  (* node columns *)
  up : bool array;
  phys_b : int array;
  prim_b : int array;
  ptr_c : int array;
  busy_until : float array;
  held : int KTbl.t array;  (* key -> block id, one table per node *)
  (* block columns *)
  mutable keys : Key.t array;
  mutable sizes : int array;
  mutable owners : int array;
  mutable expires : float array;  (* infinity when stored without a TTL *)
  mutable alive : Bytes.t;
  mutable gens : int array;
  mutable hold : int array array;  (* (node lsl 1) lor physical, newest first *)
  mutable hn : int array;  (* holder entries in use *)
  mutable datas : string option array;
  mutable hyb : Key.t array;  (* hybrid hash point, when cfg.hybrid_replicas *)
  (* epoch-cached desired replica sets *)
  mutable des : int array array;
  mutable des_epoch : int array;
  mutable up_epoch : int;  (* bumped on fail/recover, like Ring.epoch *)
  (* slot recycling *)
  mutable hiwater : int;
  mutable free : int array;
  mutable nfree : int;
  index : int KTbl.t;
  sink : Engine.sink;
  (* scratch for desired-set computation (no per-call allocation) *)
  scr1 : int array;
  scr2 : int array;
  mutable written : float;
  mutable removed : float;
  mutable migrated : float;
  mutable regenerated : float;
}

let ring t = t.ring
let engine t = t.engine
let config t = t.cfg
let node_count t = Array.length t.up

let node_stats t i =
  {
    up = t.up.(i);
    physical_bytes = t.phys_b.(i);
    primary_bytes = t.prim_b.(i);
    pointer_count = t.ptr_c.(i);
  }

let block_count t = KTbl.length t.index
let is_up t ~node = t.up.(node)
let written_bytes t = t.written
let removed_bytes t = t.removed
let migration_bytes t = t.migrated
let regeneration_bytes t = t.regenerated

let is_alive t bid = Bytes.unsafe_get t.alive bid <> '\000'

(* {2 Arena slots} *)

let grow_arena t =
  let cap = Array.length t.sizes in
  let ncap = max 1024 (2 * cap) in
  let gi a = let n = Array.make ncap 0 in Array.blit a 0 n 0 cap; n in
  let gf a = let n = Array.make ncap 0.0 in Array.blit a 0 n 0 cap; n in
  let gk a = let n = Array.make ncap Key.zero in Array.blit a 0 n 0 cap; n in
  t.keys <- gk t.keys;
  t.sizes <- gi t.sizes;
  t.owners <- gi t.owners;
  t.expires <- gf t.expires;
  (let n = Bytes.make ncap '\000' in
   Bytes.blit t.alive 0 n 0 cap;
   t.alive <- n);
  t.gens <- gi t.gens;
  (let n = Array.make ncap [||] in Array.blit t.hold 0 n 0 cap; t.hold <- n);
  t.hn <- gi t.hn;
  (let n = Array.make ncap None in Array.blit t.datas 0 n 0 cap; t.datas <- n);
  t.hyb <- gk t.hyb;
  (let n = Array.make ncap [||] in Array.blit t.des 0 n 0 cap; t.des <- n);
  t.des_epoch <- gi t.des_epoch

let alloc_block t ~key ~size ~data ~expires =
  let bid =
    if t.nfree > 0 then begin
      t.nfree <- t.nfree - 1;
      t.free.(t.nfree)
    end
    else begin
      if t.hiwater = Array.length t.sizes then grow_arena t;
      let b = t.hiwater in
      t.hiwater <- b + 1;
      b
    end
  in
  t.keys.(bid) <- key;
  t.sizes.(bid) <- size;
  t.owners.(bid) <- 0;
  t.expires.(bid) <- expires;
  Bytes.unsafe_set t.alive bid '\001';
  t.hn.(bid) <- 0;
  t.datas.(bid) <- data;
  (* Stale cached sets from a previous tenant must never match. *)
  t.des_epoch.(bid) <- min_int;
  if t.cfg.hybrid_replicas then
    t.hyb.(bid) <- D2_keyspace.Hashing.uniform_key ("hybrid|" ^ Key.to_string key);
  bid

let free_block t bid =
  Bytes.unsafe_set t.alive bid '\000';
  (* Invalidate every cell already posted against this slot. *)
  t.gens.(bid) <- t.gens.(bid) + 1;
  t.datas.(bid) <- None;
  t.keys.(bid) <- Key.zero;
  t.des.(bid) <- [||];
  t.hn.(bid) <- 0;
  if t.nfree = Array.length t.free then begin
    let ncap = max 64 (2 * t.nfree) in
    let nf = Array.make ncap 0 in
    Array.blit t.free 0 nf 0 t.nfree;
    t.free <- nf
  end;
  t.free.(t.nfree) <- bid;
  t.nfree <- t.nfree + 1

(* {2 Holder sets} *)

let find_hidx t bid n =
  let a = t.hold.(bid) in
  let m = t.hn.(bid) in
  let rec go i =
    if i >= m then -1 else if Array.unsafe_get a i lsr 1 = n then i else go (i + 1)
  in
  go 0

let prepend_holder t bid enc =
  let a = t.hold.(bid) in
  let m = t.hn.(bid) in
  let a =
    if m = Array.length a then begin
      let na = Array.make (max 4 (2 * m)) 0 in
      Array.blit a 0 na 0 m;
      t.hold.(bid) <- na;
      na
    end
    else a
  in
  Array.blit a 0 a 1 m;
  a.(0) <- enc;
  t.hn.(bid) <- m + 1

let remove_hidx t bid i =
  let a = t.hold.(bid) in
  let m = t.hn.(bid) in
  Array.blit a (i + 1) a i (m - i - 1);
  t.hn.(bid) <- m - 1

(* {2 Desired replica sets, cached per ring/liveness epoch} *)

(* The first [want] *up* nodes clockwise of a key (down nodes are
   skipped — that skip is what triggers regeneration onto farther
   successors, and its reversal on recovery is what trims them).
   Results land in [out]; the count is returned. *)
let up_succ_into t key want ~excl ~excl_n out =
  if want <= 0 then 0
  else begin
    (* Candidate window: (want+2)*8 clockwise nodes, walked in place
       with early exit. *)
    let limit = min (Ring.size t.ring) ((want + 2) * 8) in
    let count = ref 0 in
    Ring.iter_successors t.ring key ~limit (fun n ->
        (if t.up.(n) then begin
           let skip = ref false in
           for j = 0 to excl_n - 1 do
             if Array.unsafe_get excl j = n then skip := true
           done;
           if not !skip then begin
             out.(!count) <- n;
             incr count
           end
         end);
        !count < want);
    !count
  end

(* The desired replica set of a key.  Normally the first [replicas] up
   successors.  With [hybrid_replicas] (the paper's §11 future-work
   direction), one replica is instead placed at the key's *hashed*
   ring position: a consistent-hashing safety copy that survives
   targeted takeover of a key-space region and spreads large-file read
   load. *)
let compute_desired t bid =
  let key = t.keys.(bid) in
  let r = t.cfg.replicas in
  let chosen_n =
    if t.cfg.hybrid_replicas && r > 1 then begin
      let ln = up_succ_into t key (r - 1) ~excl:t.scr1 ~excl_n:0 t.scr1 in
      let hn = up_succ_into t t.hyb.(bid) 1 ~excl:t.scr1 ~excl_n:ln t.scr2 in
      if hn = 1 then begin
        t.scr1.(ln) <- t.scr2.(0);
        ln + 1
      end
      else
        (* Hashed point collides with the locality set or no distinct
           up node exists: fall back to one more locality successor. *)
        up_succ_into t key r ~excl:t.scr1 ~excl_n:0 t.scr1
    end
    else up_succ_into t key r ~excl:t.scr1 ~excl_n:0 t.scr1
  in
  if chosen_n = 0 then begin
    (* Pathological case: fewer than r nodes up — replicate on what we
       have (the key's successor, even if down). *)
    if Ring.size t.ring = 0 then [||] else [| Ring.successor t.ring key |]
  end
  else Array.sub t.scr1 0 chosen_n

let stamp t = Ring.epoch t.ring + t.up_epoch

let desired t bid =
  let s = stamp t in
  if t.des_epoch.(bid) = s then t.des.(bid)
  else begin
    let d = compute_desired t bid in
    t.des.(bid) <- d;
    t.des_epoch.(bid) <- s;
    d
  end

let arr_mem n (a : int array) =
  let rec go i = i < Array.length a && (Array.unsafe_get a i = n || go (i + 1)) in
  go 0

(* {1 Reconciliation} *)

let set_owner t bid =
  let d = desired t bid in
  if Array.length d > 0 then begin
    let o = d.(0) in
    if o <> t.owners.(bid) then begin
      let u = unit_size t.cfg t.sizes.(bid) in
      t.prim_b.(t.owners.(bid)) <- t.prim_b.(t.owners.(bid)) - u;
      t.prim_b.(o) <- t.prim_b.(o) + u;
      t.owners.(bid) <- o
    end
  end

let drop_holder t bid i =
  let enc = t.hold.(bid).(i) in
  let n = enc lsr 1 in
  remove_hidx t bid i;
  KTbl.remove t.held.(n) t.keys.(bid);
  if enc land 1 = 1 then t.phys_b.(n) <- t.phys_b.(n) - unit_size t.cfg t.sizes.(bid)
  else t.ptr_c.(n) <- t.ptr_c.(n) - 1

(* Drop holders that are up and no longer desired, once every desired
   holder physically has the bytes. *)
let try_trim t bid =
  if is_alive t bid then begin
    let d = desired t bid in
    let have_all =
      let rec go i =
        i >= Array.length d
        ||
        let j = find_hidx t bid d.(i) in
        j >= 0 && t.hold.(bid).(j) land 1 = 1 && go (i + 1)
      in
      go 0
    in
    if have_all then begin
      let i = ref 0 in
      while !i < t.hn.(bid) do
        let enc = t.hold.(bid).(!i) in
        let n = enc lsr 1 in
        if t.up.(n) && not (arr_mem n d) then drop_holder t bid !i else incr i
      done
    end
  end

let account t why size =
  match why with
  | Migration -> t.migrated <- t.migrated +. float_of_int size
  | Regen -> t.regenerated <- t.regenerated +. float_of_int size

(* Wheel-cell encoding: the low 3 tag bits select the action, the rest
   carry the node; the payload packs (generation, block id). *)
let tag_fetch_mig = 0
let tag_fetch_reg = 1
let tag_arrive_mig = 2
let tag_arrive_reg = 3
let tag_expiry = 4
let tag_delete = 5

let fetch_tag why = match why with Migration -> tag_fetch_mig | Regen -> tag_fetch_reg
let arrive_tag why = match why with Migration -> tag_arrive_mig | Regen -> tag_arrive_reg

let post_cell t ~at ~action ~node bid =
  Engine.post t.engine ~sink:t.sink ~at
    ~tag:(action lor (node lsl 3))
    ~payload:((t.gens.(bid) lsl 32) lor bid)

let post_cell_in t ~delay ~action ~node bid =
  Engine.post_in t.engine ~sink:t.sink ~delay
    ~tag:(action lor (node lsl 3))
    ~payload:((t.gens.(bid) lsl 32) lor bid)

(* Second phase of a fetch: the bytes arrive after bandwidth pacing. *)
let arrive t bid n why =
  let i = find_hidx t bid n in
  if i >= 0 && t.hold.(bid).(i) land 1 = 0 then begin
    t.hold.(bid).(i) <- t.hold.(bid).(i) lor 1;
    t.ptr_c.(n) <- t.ptr_c.(n) - 1;
    let u = unit_size t.cfg t.sizes.(bid) in
    t.phys_b.(n) <- t.phys_b.(n) + u;
    account t why u;
    try_trim t bid
  end

(* First phase: the pointer has stabilized; decide whether the fetch
   is still needed, then pace it through the node's migration link. *)
let fetch t bid n why =
  let i = find_hidx t bid n in
  if i >= 0 && t.hold.(bid).(i) land 1 = 0 then begin
    if not (arr_mem n (desired t bid)) then
      (* Desired set moved on while we waited: drop the pointer
         without moving any data — the §6 double-move saving. *)
      drop_holder t bid i
    else begin
      let has_source =
        let a = t.hold.(bid) in
        let m = t.hn.(bid) in
        let live = ref 0 in
        for j = 0 to m - 1 do
          let enc = Array.unsafe_get a j in
          if enc land 1 = 1 && t.up.(enc lsr 1) then incr live
        done;
        !live >= units_needed t.cfg
      in
      if not has_source then
        (* No live copy to fetch from; retry after a delay. *)
        post_cell_in t ~delay:60.0 ~action:(fetch_tag why) ~node:n bid
      else begin
        let now = Engine.now t.engine in
        let start = Float.max now t.busy_until.(n) in
        let xfer =
          float_of_int (unit_size t.cfg t.sizes.(bid) * 8) /. t.cfg.migration_bandwidth
        in
        t.busy_until.(n) <- start +. xfer;
        post_cell t ~at:t.busy_until.(n) ~action:(arrive_tag why) ~node:n bid
      end
    end
  end

let ensure_holder t bid n why =
  if find_hidx t bid n < 0 then begin
    prepend_holder t bid (n lsl 1);
    KTbl.replace t.held.(n) t.keys.(bid) bid;
    t.ptr_c.(n) <- t.ptr_c.(n) + 1;
    let delay =
      match why with
      | Regen -> 0.0
      | Migration -> if t.cfg.use_pointers then t.cfg.pointer_stabilization else 0.0
    in
    post_cell_in t ~delay ~action:(fetch_tag why) ~node:n bid
  end

let reconcile t bid why =
  if is_alive t bid then begin
    set_owner t bid;
    let d = desired t bid in
    Array.iter (fun n -> ensure_holder t bid n why) d;
    try_trim t bid
  end

(* {1 Client operations} *)

let delete_block t bid =
  if is_alive t bid then begin
    let key = t.keys.(bid) in
    let u = unit_size t.cfg t.sizes.(bid) in
    let a = t.hold.(bid) in
    for i = 0 to t.hn.(bid) - 1 do
      let enc = Array.unsafe_get a i in
      let n = enc lsr 1 in
      KTbl.remove t.held.(n) key;
      if enc land 1 = 1 then t.phys_b.(n) <- t.phys_b.(n) - u
      else t.ptr_c.(n) <- t.ptr_c.(n) - 1
    done;
    t.prim_b.(t.owners.(bid)) <- t.prim_b.(t.owners.(bid)) - u;
    KTbl.remove t.index key;
    t.removed <- t.removed +. float_of_int t.sizes.(bid);
    free_block t bid
  end

(* Lazy TTL sweep: fires at the recorded expiry; if a refresh pushed
   it out, re-arms instead of removing. *)
let arm_expiry t bid =
  if t.expires.(bid) < infinity then
    post_cell t
      ~at:(Float.max (Engine.now t.engine) t.expires.(bid))
      ~action:tag_expiry ~node:0 bid

let expire t bid =
  if is_alive t bid then begin
    if Engine.now t.engine >= t.expires.(bid) then delete_block t bid
    else arm_expiry t bid
  end

let dispatch t tag payload =
  let bid = payload land 0xFFFFFFFF in
  let gen = payload lsr 32 in
  (* A stale generation means the slot was freed (and possibly reused)
     after this cell was posted: the action's target is gone. *)
  if t.gens.(bid) = gen then begin
    let node = tag lsr 3 in
    match tag land 7 with
    | 0 (* tag_fetch_mig *) -> fetch t bid node Migration
    | 1 (* tag_fetch_reg *) -> fetch t bid node Regen
    | 2 (* tag_arrive_mig *) -> arrive t bid node Migration
    | 3 (* tag_arrive_reg *) -> arrive t bid node Regen
    | 4 (* tag_expiry *) -> expire t bid
    | _ (* tag_delete *) -> delete_block t bid
  end

let create ~engine ~config ~ids =
  let n = Array.length ids in
  if n = 0 then invalid_arg "Cluster.create: need at least one node";
  let ring = Ring.create () in
  Array.iteri (fun i id -> Ring.add ring ~id ~node:i) ids;
  let tref = ref None in
  let sink =
    Engine.register_sink engine (fun tag payload ->
        match !tref with Some t -> dispatch t tag payload | None -> ())
  in
  let cap = 1024 in
  let t =
    {
      cfg = config;
      engine;
      ring;
      up = Array.make n true;
      phys_b = Array.make n 0;
      prim_b = Array.make n 0;
      ptr_c = Array.make n 0;
      busy_until = Array.make n 0.0;
      held = Array.init n (fun _ -> KTbl.create 64);
      keys = Array.make cap Key.zero;
      sizes = Array.make cap 0;
      owners = Array.make cap 0;
      expires = Array.make cap infinity;
      alive = Bytes.make cap '\000';
      gens = Array.make cap 0;
      hold = Array.make cap [||];
      hn = Array.make cap 0;
      datas = Array.make cap None;
      hyb = Array.make cap Key.zero;
      des = Array.make cap [||];
      des_epoch = Array.make cap min_int;
      up_epoch = 0;
      hiwater = 0;
      free = [||];
      nfree = 0;
      index = KTbl.create 4096;
      sink;
      scr1 = Array.make (config.replicas + 1) 0;
      scr2 = Array.make 1 0;
      written = 0.0;
      removed = 0.0;
      migrated = 0.0;
      regenerated = 0.0;
    }
  in
  tref := Some t;
  t

let put t ~key ~size ?data ?ttl () =
  if size < 0 then invalid_arg "Cluster.put: negative size";
  (match ttl with
  | Some v when v <= 0.0 -> invalid_arg "Cluster.put: ttl must be positive"
  | _ -> ());
  (match KTbl.find_opt t.index key with
  | Some old -> delete_block t old
  | None -> ());
  let expires =
    match ttl with Some v -> Engine.now t.engine +. v | None -> infinity
  in
  let bid = alloc_block t ~key ~size ~data ~expires in
  let d = desired t bid in
  if Array.length d = 0 then begin
    free_block t bid;
    invalid_arg "Cluster.put: empty ring"
  end;
  let owner = d.(0) in
  t.owners.(bid) <- owner;
  let u = unit_size t.cfg size in
  Array.iter
    (fun n ->
      prepend_holder t bid ((n lsl 1) lor 1);
      KTbl.replace t.held.(n) key bid;
      t.phys_b.(n) <- t.phys_b.(n) + u)
    d;
  t.prim_b.(owner) <- t.prim_b.(owner) + u;
  KTbl.replace t.index key bid;
  arm_expiry t bid;
  t.written <- t.written +. float_of_int size

let refresh t ~key ~ttl =
  if ttl <= 0.0 then invalid_arg "Cluster.refresh: ttl must be positive";
  match KTbl.find_opt t.index key with
  | Some bid when t.expires.(bid) < infinity ->
      t.expires.(bid) <- Engine.now t.engine +. ttl
  | Some _ | None -> ()

let get t ~key =
  match KTbl.find_opt t.index key with
  | Some bid -> Some t.datas.(bid)
  | None -> None

let mem t ~key = KTbl.mem t.index key

let remove t ~key ?delay () =
  let delay = match delay with Some d -> d | None -> t.cfg.remove_delay in
  match KTbl.find_opt t.index key with
  | None -> ()
  | Some bid -> post_cell_in t ~delay ~action:tag_delete ~node:0 bid

let available t ~key =
  match KTbl.find_opt t.index key with
  | None -> false
  | Some bid ->
      let a = t.hold.(bid) in
      let m = t.hn.(bid) in
      let live = ref 0 in
      for i = 0 to m - 1 do
        let enc = Array.unsafe_get a i in
        if enc land 1 = 1 && t.up.(enc lsr 1) then incr live
      done;
      !live >= units_needed t.cfg

let find_owner t ~key =
  match KTbl.find_opt t.index key with
  | Some bid -> t.owners.(bid)
  | None -> -1

let owner_of t ~key =
  match find_owner t ~key with -1 -> None | n -> Some n

let physical_holders t ~key =
  match KTbl.find_opt t.index key with
  | None -> []
  | Some bid ->
      let a = t.hold.(bid) in
      let rec go i acc =
        if i < 0 then acc
        else
          go (i - 1)
            (let enc = a.(i) in
             if enc land 1 = 1 then (enc lsr 1) :: acc else acc)
      in
      go (t.hn.(bid) - 1) []

let physical_holders_into t ~key out =
  match KTbl.find_opt t.index key with
  | None -> 0
  | Some bid ->
      let a = t.hold.(bid) in
      let m = t.hn.(bid) in
      let count = ref 0 in
      for i = 0 to m - 1 do
        let enc = Array.unsafe_get a i in
        if enc land 1 = 1 then begin
          out.(!count) <- enc lsr 1;
          incr count
        end
      done;
      !count

(* {1 Membership events} *)

let blocks_held t n = KTbl.fold (fun _ bid acc -> bid :: acc) t.held.(n) []

let neighborhood_blocks t ~node =
  (* Blocks whose replica window an ID change of [node] can affect:
     those held by the node itself and by the r nodes clockwise of it. *)
  let r = t.cfg.replicas in
  let tbl = KTbl.create 256 in
  let add_node_blocks i =
    KTbl.iter (fun k bid -> KTbl.replace tbl k bid) t.held.(i)
  in
  add_node_blocks node;
  for k = 1 to min r (Ring.size t.ring - 1) do
    add_node_blocks (Ring.nth_successor_of_node t.ring ~node k)
  done;
  tbl

(* ID of the node [m] ranks counterclockwise (its own ID when m=0). *)
let pred_id_m t ~node m =
  Ring.id_of t.ring ~node:(Ring.node_at t.ring (Ring.rank_of t.ring ~node - m))

let all_up t =
  let rec go i = i >= Array.length t.up || (Array.unsafe_get t.up i && go (i + 1)) in
  go 0

(* An ID move of one node leaves the desired replica set of every key
   outside the node's replica reach untouched: with all nodes up, the
   node sits in the first [r] successors of [key] only when [key] lies
   in [(pred_r, id]], so only keys in that interval around the old or
   the new position (and, under [hybrid_replicas], keys whose hashed
   point does) can see their placement change.  For every other block
   [reconcile] is a proven no-op — owner already [desired.(0)], every
   desired node already a holder, surplus trimmed when its replacement
   arrived — so skipping it preserves the replay byte for byte while
   cutting the per-move sweep from the whole neighborhood to the
   handful of blocks actually in reach.  [r+1] predecessors give one
   rank of safety margin; any down node reintroduces candidate-window
   truncation, so that case keeps the full sweep. *)
let change_id t ~node ~id =
  let before = neighborhood_blocks t ~node in
  let r = t.cfg.replicas in
  let narrow =
    if Ring.size t.ring > r + 2 && all_up t then
      Some (Ring.id_of t.ring ~node, pred_id_m t ~node (r + 1))
    else None
  in
  Ring.change_id t.ring ~node ~id;
  let after = neighborhood_blocks t ~node in
  KTbl.iter (fun k bid -> KTbl.replace before k bid) after;
  match narrow with
  | None -> KTbl.iter (fun _ bid -> reconcile t bid Migration) before
  | Some (old_id, old_lo) ->
      let new_lo = pred_id_m t ~node (r + 1) in
      let in_reach k =
        Key.in_interval k ~lo:old_lo ~hi:old_id
        || Key.in_interval k ~lo:new_lo ~hi:id
      in
      KTbl.iter
        (fun k bid ->
          if
            in_reach k
            || (t.cfg.hybrid_replicas && in_reach t.hyb.(bid))
          then reconcile t bid Migration)
        before

(* A liveness flip invalidates every cached desired set (the stamp
   moves on), so the batched sweep below recomputes each touched
   block's placement exactly once and every later fetch/trim/arrival
   this epoch reads the cache. *)
let fail t ~node =
  if t.up.(node) then begin
    t.up.(node) <- false;
    t.up_epoch <- t.up_epoch + 1;
    Log.debug (fun m ->
        m "t=%.0f node %d failed (%d bytes held); regenerating" (Engine.now t.engine)
          node t.phys_b.(node));
    (* Regenerate under-replicated blocks onto farther successors. *)
    List.iter (fun bid -> reconcile t bid Regen) (blocks_held t node)
  end

let recover t ~node =
  if not t.up.(node) then begin
    t.up.(node) <- true;
    t.up_epoch <- t.up_epoch + 1;
    Log.debug (fun m -> m "t=%.0f node %d recovered" (Engine.now t.engine) node);
    (* The node returns with its disk intact: re-desire its blocks and
       trim the regenerated surplus. *)
    List.iter (fun bid -> reconcile t bid Migration) (blocks_held t node)
  end

let median_primary_key t ~node =
  let keys =
    KTbl.fold
      (fun k bid acc ->
        if t.owners.(bid) = node then (k, t.sizes.(bid)) :: acc else acc)
      t.held.(node) []
  in
  match keys with
  | [] -> None
  | _ ->
      let sorted = List.sort (fun (a, _) (b, _) -> Key.compare a b) keys in
      let total = List.fold_left (fun acc (_, s) -> acc + s) 0 sorted in
      let rec walk acc = function
        | [] -> None
        | [ (k, _) ] -> Some k
        | (k, s) :: rest ->
            let acc = acc + s in
            if 2 * acc >= total then Some k else walk acc rest
      in
      walk 0 sorted

let check_invariants t =
  Ring.check_invariants t.ring;
  let nn = Array.length t.up in
  let phys = Array.make nn 0 in
  let prim = Array.make nn 0 in
  let ptrs = Array.make nn 0 in
  KTbl.iter
    (fun key bid ->
      if not (is_alive t bid) then
        invalid_arg "Cluster.check_invariants: dead block in index";
      if not (Key.equal key t.keys.(bid)) then
        invalid_arg "Cluster.check_invariants: index key mismatch";
      prim.(t.owners.(bid)) <- prim.(t.owners.(bid)) + unit_size t.cfg t.sizes.(bid);
      let a = t.hold.(bid) in
      for i = 0 to t.hn.(bid) - 1 do
        let enc = a.(i) in
        let n = enc lsr 1 in
        (match KTbl.find_opt t.held.(n) key with
        | Some bid' when bid' = bid -> ()
        | _ -> invalid_arg "Cluster.check_invariants: holder missing held entry");
        if enc land 1 = 1 then phys.(n) <- phys.(n) + unit_size t.cfg t.sizes.(bid)
        else ptrs.(n) <- ptrs.(n) + 1
      done)
    t.index;
  for i = 0 to nn - 1 do
    if t.phys_b.(i) <> phys.(i) then
      invalid_arg
        (Printf.sprintf "Cluster.check_invariants: node %d physical bytes %d <> %d"
           i t.phys_b.(i) phys.(i));
    if t.prim_b.(i) <> prim.(i) then
      invalid_arg
        (Printf.sprintf "Cluster.check_invariants: node %d primary bytes %d <> %d"
           i t.prim_b.(i) prim.(i));
    if t.ptr_c.(i) <> ptrs.(i) then
      invalid_arg
        (Printf.sprintf "Cluster.check_invariants: node %d pointer count %d <> %d"
           i t.ptr_c.(i) ptrs.(i))
  done;
  (* Arena bookkeeping: every held entry references a live slot, and
     free slots are genuinely dead. *)
  Array.iter
    (fun held ->
      KTbl.iter
        (fun _ bid ->
          if not (is_alive t bid) then
            invalid_arg "Cluster.check_invariants: held entry references freed slot")
        held)
    t.held;
  for i = 0 to t.nfree - 1 do
    if is_alive t t.free.(i) then
      invalid_arg "Cluster.check_invariants: live slot on the free list"
  done
