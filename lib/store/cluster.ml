module Key = D2_keyspace.Key
module KTbl = Key.Table
module Ring = D2_dht.Ring
module Engine = D2_simnet.Engine

let src = Logs.Src.create "d2.store" ~doc:"D2-Store block placement events"

module Log = (val Logs.src_log src : Logs.LOG)

type redundancy = Replication | Erasure of int

type config = {
  replicas : int;
  redundancy : redundancy;
  use_pointers : bool;
  pointer_stabilization : float;
  migration_bandwidth : float;
  remove_delay : float;
  hybrid_replicas : bool;
}

let default_config =
  {
    replicas = 3;
    redundancy = Replication;
    use_pointers = true;
    pointer_stabilization = 3600.0;
    migration_bandwidth = 750_000.0;
    remove_delay = 30.0;
    hybrid_replicas = false;
  }

(* How many live stored units a read needs, and how big one unit is.
   Under replication every copy is the whole block; under [Erasure m]
   each of the [replicas] units is a size/m fragment and any m of
   them reconstruct the block (§3). *)
let units_needed cfg = match cfg.redundancy with Replication -> 1 | Erasure m -> m

let unit_size cfg size =
  match cfg.redundancy with
  | Replication -> size
  | Erasure m -> (size + m - 1) / m

type why = Migration | Regen

type holder = { hnode : int; mutable physical : bool }

type block = {
  key : Key.t;
  size : int;
  mutable data : string option;
  mutable holders : holder list;
  mutable owner : int;  (* current primary, for load accounting *)
  mutable expires : float;  (* infinity when stored without a TTL *)
  mutable dead : bool;
}

type node = {
  mutable up : bool;
  held : block KTbl.t;
  mutable physical_bytes : int;
  mutable primary_bytes : int;
  mutable pointer_count : int;
  mutable busy_until : float;  (* migration/regeneration link pacing *)
}

type node_stats = {
  up : bool;
  physical_bytes : int;
  primary_bytes : int;
  pointer_count : int;
}

type t = {
  cfg : config;
  engine : Engine.t;
  ring : Ring.t;
  nodes : node array;
  index : block KTbl.t;
  mutable written : float;
  mutable removed : float;
  mutable migrated : float;
  mutable regenerated : float;
}

let create ~engine ~config ~ids =
  let n = Array.length ids in
  if n = 0 then invalid_arg "Cluster.create: need at least one node";
  let ring = Ring.create () in
  Array.iteri (fun i id -> Ring.add ring ~id ~node:i) ids;
  {
    cfg = config;
    engine;
    ring;
    nodes =
      Array.init n (fun _ ->
          {
            up = true;
            held = KTbl.create 64;
            physical_bytes = 0;
            primary_bytes = 0;
            pointer_count = 0;
            busy_until = 0.0;
          });
    index = KTbl.create 4096;
    written = 0.0;
    removed = 0.0;
    migrated = 0.0;
    regenerated = 0.0;
  }

let ring t = t.ring
let engine t = t.engine
let config t = t.cfg
let node_count t = Array.length t.nodes

let node_stats t i =
  let n = t.nodes.(i) in
  {
    up = n.up;
    physical_bytes = n.physical_bytes;
    primary_bytes = n.primary_bytes;
    pointer_count = n.pointer_count;
  }

let block_count t = KTbl.length t.index
let is_up t ~node = t.nodes.(node).up
let written_bytes t = t.written
let removed_bytes t = t.removed
let migration_bytes t = t.migrated
let regeneration_bytes t = t.regenerated

(* The first [want] *up* nodes clockwise of a key (down nodes are
   skipped — that skip is what triggers regeneration onto farther
   successors, and its reversal on recovery is what trims them). *)
let up_successors t key want ~excluding =
  if want <= 0 then []
  else begin
    (* Same candidate window as before ((want+2)*8 clockwise nodes),
       but walked in place with early exit instead of materializing a
       40-element list per call — this runs on every [desired]. *)
    let limit = min (Ring.size t.ring) ((want + 2) * 8) in
    let acc = ref [] in
    let count = ref 0 in
    Ring.iter_successors t.ring key ~limit (fun n ->
        if t.nodes.(n).up && not (List.mem n excluding) then begin
          acc := n :: !acc;
          incr count
        end;
        !count < want);
    List.rev !acc
  end

(* The desired replica set of a key.  Normally the first [replicas] up
   successors.  With [hybrid_replicas] (the paper's §11 future-work
   direction), one replica is instead placed at the key's *hashed*
   ring position: a consistent-hashing safety copy that survives
   targeted takeover of a key-space region and spreads large-file read
   load. *)
let desired t key =
  let r = t.cfg.replicas in
  let chosen =
    if t.cfg.hybrid_replicas && r > 1 then begin
      let local = up_successors t key (r - 1) ~excluding:[] in
      let hash_point = D2_keyspace.Hashing.uniform_key ("hybrid|" ^ Key.to_string key) in
      match up_successors t hash_point 1 ~excluding:local with
      | [ h ] -> local @ [ h ]
      | _ ->
          (* Hashed point collides with the locality set or no distinct
             up node exists: fall back to one more locality successor. *)
          up_successors t key r ~excluding:[]
    end
    else up_successors t key r ~excluding:[]
  in
  (* Pathological case: fewer than r nodes up — replicate on what we have. *)
  if chosen = [] then
    (match Ring.successors t.ring key 1 with [] -> [] | n :: _ -> [ n ])
  else chosen

let find_holder block n = List.find_opt (fun h -> h.hnode = n) block.holders

let set_owner t block =
  match desired t block.key with
  | [] -> ()
  | o :: _ ->
      if o <> block.owner then begin
        let u = unit_size t.cfg block.size in
        t.nodes.(block.owner).primary_bytes <- t.nodes.(block.owner).primary_bytes - u;
        t.nodes.(o).primary_bytes <- t.nodes.(o).primary_bytes + u;
        block.owner <- o
      end

let drop_holder t block (h : holder) =
  block.holders <- List.filter (fun x -> x != h) block.holders;
  let node = t.nodes.(h.hnode) in
  KTbl.remove node.held block.key;
  if h.physical then node.physical_bytes <- node.physical_bytes - unit_size t.cfg block.size
  else node.pointer_count <- node.pointer_count - 1

(* Drop holders that are up and no longer desired, once every desired
   holder physically has the bytes. *)
let try_trim t block =
  if not block.dead then begin
    let des = desired t block.key in
    let have_all =
      List.for_all
        (fun d -> match find_holder block d with Some h -> h.physical | None -> false)
        des
    in
    if have_all then begin
      let extras =
        List.filter
          (fun h -> t.nodes.(h.hnode).up && not (List.mem h.hnode des))
          block.holders
      in
      List.iter (drop_holder t block) extras
    end
  end

let account t why size =
  match why with
  | Migration -> t.migrated <- t.migrated +. float_of_int size
  | Regen -> t.regenerated <- t.regenerated +. float_of_int size

(* Second phase of a fetch: the bytes arrive after bandwidth pacing. *)
let rec arrive t block n why =
  match find_holder block n with
  | None -> ()
  | Some h when h.physical -> ()
  | Some h ->
      if block.dead then drop_holder t block h
      else begin
        let node = t.nodes.(n) in
        h.physical <- true;
        node.pointer_count <- node.pointer_count - 1;
        node.physical_bytes <- node.physical_bytes + unit_size t.cfg block.size;
        account t why (unit_size t.cfg block.size);
        try_trim t block
      end

(* First phase: the pointer has stabilized; decide whether the fetch
   is still needed, then pace it through the node's migration link. *)
and fetch t block n why =
  match find_holder block n with
  | None -> ()
  | Some h when h.physical -> ()
  | Some h ->
      if block.dead then drop_holder t block h
      else if not (List.mem n (desired t block.key)) then
        (* Desired set moved on while we waited: drop the pointer
           without moving any data — the §6 double-move saving. *)
        drop_holder t block h
      else begin
        let has_source =
          List.length
            (List.filter (fun x -> x.physical && t.nodes.(x.hnode).up) block.holders)
          >= units_needed t.cfg
        in
        if not has_source then
          (* No live copy to fetch from; retry after a delay. *)
          ignore
            (Engine.schedule_in t.engine ~delay:60.0 (fun () -> fetch t block n why))
        else begin
          let node = t.nodes.(n) in
          let now = Engine.now t.engine in
          let start = Float.max now node.busy_until in
          let xfer =
            float_of_int (unit_size t.cfg block.size * 8) /. t.cfg.migration_bandwidth
          in
          node.busy_until <- start +. xfer;
          ignore
            (Engine.schedule t.engine ~at:node.busy_until (fun () ->
                 arrive t block n why))
        end
      end

let ensure_holder t block n why =
  if find_holder block n = None then begin
    let h = { hnode = n; physical = false } in
    block.holders <- h :: block.holders;
    let node = t.nodes.(n) in
    KTbl.replace node.held block.key block;
    node.pointer_count <- node.pointer_count + 1;
    let delay =
      match why with
      | Regen -> 0.0
      | Migration -> if t.cfg.use_pointers then t.cfg.pointer_stabilization else 0.0
    in
    ignore (Engine.schedule_in t.engine ~delay (fun () -> fetch t block n why))
  end

let reconcile t block why =
  if not block.dead then begin
    set_owner t block;
    let des = desired t block.key in
    List.iter (fun n -> ensure_holder t block n why) des;
    try_trim t block
  end

(* {1 Client operations} *)

let delete_block t block =
  if not block.dead then begin
    block.dead <- true;
    List.iter
      (fun (h : holder) ->
        let node = t.nodes.(h.hnode) in
        KTbl.remove node.held block.key;
        if h.physical then
          node.physical_bytes <- node.physical_bytes - unit_size t.cfg block.size
        else node.pointer_count <- node.pointer_count - 1)
      block.holders;
    block.holders <- [];
    t.nodes.(block.owner).primary_bytes <-
      t.nodes.(block.owner).primary_bytes - unit_size t.cfg block.size;
    KTbl.remove t.index block.key;
    t.removed <- t.removed +. float_of_int block.size
  end

(* Lazy TTL sweep: fires at the recorded expiry; if a refresh pushed
   it out, re-arms instead of removing. *)
let rec arm_expiry t block =
  if block.expires < infinity then
    ignore
      (Engine.schedule t.engine ~at:(Float.max (Engine.now t.engine) block.expires)
         (fun () ->
           if not block.dead then begin
             if Engine.now t.engine >= block.expires then delete_block t block
             else arm_expiry t block
           end))

let put t ~key ~size ?data ?ttl () =
  if size < 0 then invalid_arg "Cluster.put: negative size";
  (match ttl with
  | Some v when v <= 0.0 -> invalid_arg "Cluster.put: ttl must be positive"
  | _ -> ());
  (match KTbl.find_opt t.index key with
  | Some old -> delete_block t old
  | None -> ());
  let des = desired t key in
  let owner = match des with o :: _ -> o | [] -> invalid_arg "Cluster.put: empty ring" in
  let expires =
    match ttl with Some v -> Engine.now t.engine +. v | None -> infinity
  in
  let block = { key; size; data; holders = []; owner; expires; dead = false } in
  List.iter
    (fun n ->
      block.holders <- { hnode = n; physical = true } :: block.holders;
      let node = t.nodes.(n) in
      KTbl.replace node.held key block;
      node.physical_bytes <- node.physical_bytes + unit_size t.cfg size)
    des;
  t.nodes.(owner).primary_bytes <- t.nodes.(owner).primary_bytes + unit_size t.cfg size;
  KTbl.replace t.index key block;
  arm_expiry t block;
  t.written <- t.written +. float_of_int size

let refresh t ~key ~ttl =
  if ttl <= 0.0 then invalid_arg "Cluster.refresh: ttl must be positive";
  match KTbl.find_opt t.index key with
  | Some b when (not b.dead) && b.expires < infinity ->
      b.expires <- Engine.now t.engine +. ttl
  | Some _ | None -> ()

let get t ~key =
  match KTbl.find_opt t.index key with
  | Some b when not b.dead -> Some b.data
  | Some _ | None -> None

let mem t ~key =
  match KTbl.find_opt t.index key with
  | Some b -> not b.dead
  | None -> false

let remove t ~key ?delay () =
  let delay = match delay with Some d -> d | None -> t.cfg.remove_delay in
  match KTbl.find_opt t.index key with
  | None -> ()
  | Some block ->
      ignore (Engine.schedule_in t.engine ~delay (fun () -> delete_block t block))

let available t ~key =
  match KTbl.find_opt t.index key with
  | None -> false
  | Some b ->
      let live =
        List.length (List.filter (fun h -> h.physical && t.nodes.(h.hnode).up) b.holders)
      in
      (not b.dead) && live >= units_needed t.cfg

let owner_of t ~key =
  match KTbl.find_opt t.index key with
  | Some b when not b.dead -> Some b.owner
  | Some _ | None -> None

let physical_holders t ~key =
  match KTbl.find_opt t.index key with
  | None -> []
  | Some b ->
      List.filter_map (fun h -> if h.physical then Some h.hnode else None) b.holders

(* {1 Membership events} *)

let blocks_held t n =
  KTbl.fold (fun _ b acc -> b :: acc) t.nodes.(n).held []

let neighborhood_blocks t ~node =
  (* Blocks whose replica window an ID change of [node] can affect:
     those held by the node itself and by the r nodes clockwise of it. *)
  let r = t.cfg.replicas in
  let tbl = KTbl.create 256 in
  let add_node_blocks i =
    KTbl.iter (fun k b -> KTbl.replace tbl k b) t.nodes.(i).held
  in
  add_node_blocks node;
  for k = 1 to min r (Ring.size t.ring - 1) do
    add_node_blocks (Ring.nth_successor_of_node t.ring ~node k)
  done;
  tbl

let change_id t ~node ~id =
  let before = neighborhood_blocks t ~node in
  Ring.change_id t.ring ~node ~id;
  let after = neighborhood_blocks t ~node in
  KTbl.iter (fun k b -> KTbl.replace before k b) after;
  KTbl.iter (fun _ b -> reconcile t b Migration) before

let fail t ~node =
  let n = t.nodes.(node) in
  if n.up then begin
    n.up <- false;
    Log.debug (fun m ->
        m "t=%.0f node %d failed (%d bytes held); regenerating" (Engine.now t.engine)
          node n.physical_bytes);
    (* Regenerate under-replicated blocks onto farther successors. *)
    List.iter (fun b -> reconcile t b Regen) (blocks_held t node)
  end

let recover t ~node =
  let n = t.nodes.(node) in
  if not n.up then begin
    n.up <- true;
    Log.debug (fun m -> m "t=%.0f node %d recovered" (Engine.now t.engine) node);
    (* The node returns with its disk intact: re-desire its blocks and
       trim the regenerated surplus. *)
    List.iter (fun b -> reconcile t b Migration) (blocks_held t node)
  end

let median_primary_key t ~node =
  let keys =
    KTbl.fold
      (fun _ b acc -> if b.owner = node && not b.dead then (b.key, b.size) :: acc else acc)
      t.nodes.(node).held []
  in
  match keys with
  | [] -> None
  | _ ->
      let sorted = List.sort (fun (a, _) (b, _) -> Key.compare a b) keys in
      let total = List.fold_left (fun acc (_, s) -> acc + s) 0 sorted in
      let rec walk acc = function
        | [] -> None
        | [ (k, _) ] -> Some k
        | (k, s) :: rest ->
            let acc = acc + s in
            if 2 * acc >= total then Some k else walk acc rest
      in
      walk 0 sorted

let check_invariants t =
  Ring.check_invariants t.ring;
  let phys = Array.make (Array.length t.nodes) 0 in
  let prim = Array.make (Array.length t.nodes) 0 in
  let ptrs = Array.make (Array.length t.nodes) 0 in
  KTbl.iter
    (fun key b ->
      if b.dead then invalid_arg "Cluster.check_invariants: dead block in index";
      if not (Key.equal key b.key) then
        invalid_arg "Cluster.check_invariants: index key mismatch";
      prim.(b.owner) <- prim.(b.owner) + unit_size t.cfg b.size;
      List.iter
        (fun (h : holder) ->
          (match KTbl.find_opt t.nodes.(h.hnode).held key with
          | Some b' when b' == b -> ()
          | _ -> invalid_arg "Cluster.check_invariants: holder missing held entry");
          if h.physical then phys.(h.hnode) <- phys.(h.hnode) + unit_size t.cfg b.size
          else ptrs.(h.hnode) <- ptrs.(h.hnode) + 1)
        b.holders)
    t.index;
  Array.iteri
    (fun i (n : node) ->
      if n.physical_bytes <> phys.(i) then
        invalid_arg
          (Printf.sprintf "Cluster.check_invariants: node %d physical bytes %d <> %d"
             i n.physical_bytes phys.(i));
      if n.primary_bytes <> prim.(i) then
        invalid_arg
          (Printf.sprintf "Cluster.check_invariants: node %d primary bytes %d <> %d"
             i n.primary_bytes prim.(i));
      if n.pointer_count <> ptrs.(i) then
        invalid_arg
          (Printf.sprintf "Cluster.check_invariants: node %d pointer count %d <> %d"
             i n.pointer_count ptrs.(i)))
    t.nodes
