(** DHT ring membership and key-to-node assignment.

    Nodes are integer handles placed on the 64-byte key ring; the node
    whose ID is the immediate successor of a key owns it (consistent
    hashing's assignment rule, which D2 keeps — only the choice of IDs
    changes, via load balancing ID reassignment).

    Routing is modelled after Mercury/Chord-style small-world graphs
    that work for {e non-uniform} key distributions: every node keeps
    links to the nodes at ring-rank distance 1, 2, 4, 8, … (rank-based
    fingers — what Mercury approximates with sampled histograms), so a
    greedy lookup takes [popcount] of the rank distance hops, i.e.
    O(log n) with mean ~log2(n)/2.  {!route_hops} computes that hop
    count exactly from the current membership. *)

type t

val create : unit -> t

val size : t -> int

val epoch : t -> int
(** Monotonic membership-change counter: bumped by every {!add} and
    {!remove} (so {!change_id} bumps it twice).  Consumers cache
    ring-walk results ({!D2_store.Cluster}'s desired replica sets)
    keyed by this value and revalidate with one [int] compare. *)

val add : t -> id:D2_keyspace.Key.t -> node:int -> unit
(** Join a node with the given ID.
    @raise Invalid_argument if the ID is taken or the node is already
    a member. *)

val remove : t -> node:int -> unit
(** Leave. @raise Invalid_argument if not a member. *)

val change_id : t -> node:int -> id:D2_keyspace.Key.t -> unit
(** Atomic leave + rejoin used by the load balancer. *)

val mem : t -> node:int -> bool

val id_taken : t -> D2_keyspace.Key.t -> bool
(** Whether some member already uses this exact ID. *)

val id_of : t -> node:int -> D2_keyspace.Key.t
(** @raise Invalid_argument if not a member. *)

val successor : t -> D2_keyspace.Key.t -> int
(** Owner of a key. @raise Invalid_argument on an empty ring. *)

val successors : t -> D2_keyspace.Key.t -> int -> int list
(** The replica set: the [r] distinct nodes clockwise from (and
    including) the key's owner.  Returns fewer when the ring is
    smaller than [r]. *)

val iter_successors : t -> D2_keyspace.Key.t -> limit:int -> (int -> bool) -> unit
(** [iter_successors t key ~limit f] visits the same nodes as
    [successors t key limit] in the same clockwise order, but without
    materializing the list, and stops early when [f] returns [false] —
    the replica-selection hot path ({!D2_store.Cluster}) usually needs
    only the first few up nodes of a long candidate window. *)

val predecessor_id : t -> node:int -> D2_keyspace.Key.t
(** ID of the node's predecessor (its own ID when it is alone);
    the node's responsibility range is [(predecessor_id, id_of]]. *)

val rank_of : t -> node:int -> int
(** Position in ID order, 0-based. *)

val node_at : t -> int -> int
(** Node at a rank (mod ring size). *)

val nth_successor_of_node : t -> node:int -> int -> int
(** The node [k] ranks clockwise of [node]. *)

val route_hops : t -> src:int -> key:D2_keyspace.Key.t -> int
(** Hops for a greedy rank-finger lookup from [src] to the key's
    owner; 0 when [src] owns the key. *)

val members : t -> int list
(** All node handles, in ring order. *)

val check_invariants : t -> unit
(** Internal-consistency check for tests. *)
