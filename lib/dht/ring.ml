module Key = D2_keyspace.Key

type t = {
  mutable ids : Key.t array;  (** sorted ascending *)
  mutable pfx : int array;  (** [Key.prefix_at ids.(i) off], same index *)
  mutable nodes : int array;  (** node handle at same index *)
  mutable n : int;
  mutable off : int;  (** common-prefix length of all ids, <= max_prefix_offset *)
  mutable epoch : int;  (** bumped on every membership change *)
  by_node : (int, Key.t) Hashtbl.t;
}

let create () =
  {
    ids = [||];
    pfx = [||];
    nodes = [||];
    n = 0;
    off = Key.max_prefix_offset;
    epoch = 0;
    by_node = Hashtbl.create 64;
  }

let size t = t.n

let epoch t = t.epoch

let mem t ~node = Hashtbl.mem t.by_node node

let id_of t ~node =
  match Hashtbl.find_opt t.by_node node with
  | Some id -> id
  | None -> invalid_arg "Ring.id_of: node is not a member"

(* The ids are sorted, so every id shares the common prefix of the
   first and last one.  Comparing precomputed 62-bit prefixes taken at
   that offset resolves almost every binary-search step with one
   unboxed int comparison, even when all ids share a long prefix
   (load-balanced rings derive ids from one volume's keys). *)
let current_off t =
  if t.n <= 1 then Key.max_prefix_offset
  else min Key.max_prefix_offset (Key.common_prefix_len t.ids.(0) t.ids.(t.n - 1))

(* Re-derive [off] after a membership change; [fresh] is the index of
   a newly inserted id still missing its prefix, or -1. *)
let sync_prefixes t ~fresh =
  let off = current_off t in
  if off <> t.off then begin
    t.off <- off;
    for i = 0 to t.n - 1 do
      t.pfx.(i) <- Key.prefix_at t.ids.(i) off
    done
  end
  else if fresh >= 0 then t.pfx.(fresh) <- Key.prefix_at t.ids.(fresh) off

(* Index of the first id >= key, or [t.n] if none. *)
let lower_bound t key =
  if t.n = 0 then 0
  else begin
    (* All ids agree on their first [off] bytes; one head comparison
       settles any key that diverges from that prefix. *)
    let c = if t.off = 0 then 0 else Key.compare_head key t.ids.(0) t.off in
    if c < 0 then 0
    else if c > 0 then t.n
    else begin
      let kp = Key.prefix_at key t.off in
      let lo = ref 0 and hi = ref t.n in
      while !lo < !hi do
        let mid = (!lo + !hi) lsr 1 in
        let mp = Array.unsafe_get t.pfx mid in
        let below =
          if mp < kp then true
          else if mp > kp then false
          else Key.compare_from t.off t.ids.(mid) key < 0
        in
        if below then lo := mid + 1 else hi := mid
      done;
      !lo
    end
  end

let id_taken t key =
  let i = lower_bound t key in
  i < t.n && Key.equal t.ids.(i) key

let rank_of t ~node =
  let id = id_of t ~node in
  let i = lower_bound t id in
  assert (i < t.n && Key.equal t.ids.(i) id);
  i

let node_at t rank =
  if t.n = 0 then invalid_arg "Ring.node_at: empty ring";
  let r = ((rank mod t.n) + t.n) mod t.n in
  t.nodes.(r)

let grow t =
  let cap = Array.length t.ids in
  if t.n = cap then begin
    let ncap = max 16 (2 * cap) in
    let ids = Array.make ncap Key.zero
    and pfx = Array.make ncap 0
    and nodes = Array.make ncap 0 in
    Array.blit t.ids 0 ids 0 t.n;
    Array.blit t.pfx 0 pfx 0 t.n;
    Array.blit t.nodes 0 nodes 0 t.n;
    t.ids <- ids;
    t.pfx <- pfx;
    t.nodes <- nodes
  end

let add t ~id ~node =
  if mem t ~node then invalid_arg "Ring.add: node already a member";
  let i = lower_bound t id in
  if i < t.n && Key.equal t.ids.(i) id then invalid_arg "Ring.add: id already taken";
  grow t;
  Array.blit t.ids i t.ids (i + 1) (t.n - i);
  Array.blit t.pfx i t.pfx (i + 1) (t.n - i);
  Array.blit t.nodes i t.nodes (i + 1) (t.n - i);
  t.ids.(i) <- id;
  t.nodes.(i) <- node;
  t.n <- t.n + 1;
  t.epoch <- t.epoch + 1;
  Hashtbl.replace t.by_node node id;
  sync_prefixes t ~fresh:i

let remove t ~node =
  let i = rank_of t ~node in
  Array.blit t.ids (i + 1) t.ids i (t.n - i - 1);
  Array.blit t.pfx (i + 1) t.pfx i (t.n - i - 1);
  Array.blit t.nodes (i + 1) t.nodes i (t.n - i - 1);
  t.n <- t.n - 1;
  t.epoch <- t.epoch + 1;
  Hashtbl.remove t.by_node node;
  sync_prefixes t ~fresh:(-1)

let change_id t ~node ~id =
  remove t ~node;
  add t ~id ~node

let successor t key =
  if t.n = 0 then invalid_arg "Ring.successor: empty ring";
  let i = lower_bound t key in
  if i = t.n then t.nodes.(0) else t.nodes.(i)

let successors t key r =
  if t.n = 0 then []
  else begin
    let start = let i = lower_bound t key in if i = t.n then 0 else i in
    let count = min r t.n in
    List.init count (fun k -> t.nodes.((start + k) mod t.n))
  end

let iter_successors t key ~limit f =
  if t.n > 0 then begin
    let start = let i = lower_bound t key in if i = t.n then 0 else i in
    let count = min limit t.n in
    let k = ref 0 and continue_ = ref true in
    while !continue_ && !k < count do
      let idx = start + !k in
      let idx = if idx >= t.n then idx - t.n else idx in
      continue_ := f t.nodes.(idx);
      incr k
    done
  end

let predecessor_id t ~node =
  let i = rank_of t ~node in
  t.ids.((i - 1 + t.n) mod t.n)

let nth_successor_of_node t ~node k =
  let i = rank_of t ~node in
  t.nodes.(((i + k) mod t.n + t.n) mod t.n)

(* Set-bit counts of all 16-bit values, built once at module init. *)
let popcount16 =
  Array.init 65536 (fun v ->
      let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
      go v 0)

let route_hops t ~src ~key =
  let owner_idx =
    let i = lower_bound t key in
    if i = t.n then 0 else i
  in
  let src_idx = rank_of t ~node:src in
  let d = ((owner_idx - src_idx) mod t.n + t.n) mod t.n in
  (* Greedy descent over rank fingers at +2^i: one hop per set bit,
     counted by table over 16-bit chunks (d < n, so two suffice for
     any ring below 2^32 nodes; the remaining chunks cost nothing). *)
  Array.unsafe_get popcount16 (d land 0xFFFF)
  + Array.unsafe_get popcount16 ((d lsr 16) land 0xFFFF)
  + Array.unsafe_get popcount16 ((d lsr 32) land 0xFFFF)
  + Array.unsafe_get popcount16 (d lsr 48)

let members t = Array.to_list (Array.sub t.nodes 0 t.n)

let check_invariants t =
  if t.n <> Hashtbl.length t.by_node then
    invalid_arg "Ring.check_invariants: size mismatch";
  for i = 0 to t.n - 2 do
    if Key.compare t.ids.(i) t.ids.(i + 1) >= 0 then
      invalid_arg "Ring.check_invariants: ids not strictly sorted"
  done;
  for i = 0 to t.n - 1 do
    match Hashtbl.find_opt t.by_node t.nodes.(i) with
    | Some id when Key.equal id t.ids.(i) -> ()
    | _ -> invalid_arg "Ring.check_invariants: node/id mapping broken"
  done;
  if t.n > 0 && t.off <> current_off t then
    invalid_arg "Ring.check_invariants: stale prefix offset";
  for i = 0 to t.n - 1 do
    if t.pfx.(i) <> Key.prefix_at t.ids.(i) t.off then
      invalid_arg "Ring.check_invariants: stale prefix cache"
  done
