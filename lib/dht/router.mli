(** Explicit long-link routing tables over a ring snapshot.

    {!Ring.route_hops} computes the hop count of an idealized
    rank-finger graph analytically; this module builds the {e actual}
    per-node link tables and routes greedily over them, so routing
    behaviour (paths, hop distributions, the effect of the link
    policy) can be measured rather than assumed.

    Three link policies:
    - [Fingers]: links at rank distance 1, 2, 4, 8, … — the
      deterministic small-world graph (Chord-in-rank-space), which is
      what Mercury's histogram-guided link placement approximates for
      non-uniform key distributions;
    - [Harmonic k]: [k] links per node with rank offsets drawn from
      the harmonic distribution P(d) ∝ 1/d — Mercury/Symphony's
      randomized construction, expected O(log²n / k) hops;
    - [Successor_only]: ring walking, the O(n) baseline.

    Tables are built from a ring snapshot; call {!rebuild} after
    membership changes. *)

type policy = Fingers | Harmonic of int | Successor_only

val policy_name : policy -> string

type t

val create : ring:Ring.t -> policy:policy -> rng:D2_util.Rng.t -> t
(** Build link tables for every current member.
    @raise Invalid_argument on an empty ring. *)

val rebuild : t -> unit
(** Refresh tables after ring membership/ID changes. *)

val policy : t -> policy

val links_of : t -> node:int -> int list
(** This node's outgoing links (node handles), successor first. *)

val route : t -> src:int -> key:D2_keyspace.Key.t -> int list
(** Greedy clockwise route: the sequence of nodes after [src], ending
    with the key's owner ([[]] if [src] owns the key).  Total
    messages for a recursive lookup = path length + 1 reply. *)

val hops : t -> src:int -> key:D2_keyspace.Key.t -> int
(** Length of [route t ~src ~key], counted by the same iterative
    kernel without building the path — allocation-free. *)

val route_reference : t -> src:int -> key:D2_keyspace.Key.t -> int list
(** The original recursive list-building implementation, retained as
    the oracle for the equivalence test; same answers as {!route}. *)
