(** Explicit long-link routing tables over a ring snapshot.

    {!Ring.route_hops} computes the hop count of an idealized
    rank-finger graph analytically; this module builds the {e actual}
    per-node link tables and routes greedily over them, so routing
    behaviour (paths, hop distributions, the effect of the link
    policy) can be measured rather than assumed.

    Five link policies, all compiled by one policy-agnostic table
    builder into the same dense per-rank jump tables and driven by the
    same zero-alloc iterative kernel:
    - [Fingers]: links at rank distance 1, 2, 4, 8, … — the
      deterministic small-world graph (Chord-in-rank-space), which is
      what Mercury's histogram-guided link placement approximates for
      non-uniform key distributions;
    - [Harmonic k]: [k] links per node with rank offsets drawn from
      the harmonic distribution P(d) ∝ 1/d — Mercury/Symphony's
      randomized construction, expected O(log²n / k) hops;
    - [Chord]: finger tables in {e key space} — node at key position
      [p] links to the owner of [p + 2^i] for each [i].  Equivalent to
      [Fingers] when IDs are uniform (hashed), but degrades toward
      ring walking when IDs are clustered, which is exactly the
      non-uniform-keyspace failure mode D2's order-preserving
      assignment exhibits and Mercury-style rank links fix;
    - [Kademlia b]: rank-distance buckets [2^j, 2^(j+1)) with [b]
      evenly spaced links per bucket — b-way bucket overlap, each hop
      resolving ~log2(b) extra bits; [Kademlia 1] ≡ [Fingers];
    - [Successor_only]: ring walking, the O(n) baseline.

    {2 Hop and message accounting}

    One convention everywhere: {b hops = forwarding steps from [src]
    to the key's owner, excluding the final reply; 0 when [src] owns
    the key.}  {!hops}, {!Ring.route_hops} (the analytic model) and
    the length of {!route} all agree on it.  A full lookup therefore
    costs [hops + 1] messages — the [hops] forwards plus one reply in
    the recursive style, or equivalently the [hops] redirect answers
    plus the owner's answer in the live runtime's iterative style
    (where the client's RPC count to resolve a key via a seed is
    exactly [hops-from-seed + 1]).  {!route_alpha} reports messages as
    query/reply exchanges under the same rule, so [alpha = 1] yields
    [messages = hops].

    Tables are built from a ring snapshot and stamped with
    {!Ring.epoch}; call {!rebuild} after membership changes — it is a
    no-op when the epoch is unchanged and incremental where the policy
    allows. *)

type policy =
  | Fingers
  | Harmonic of int
  | Chord
  | Kademlia of int
  | Successor_only

val policy_name : policy -> string

val policy_of_string : string -> policy option
(** Inverse of {!policy_name} for CLI / env knobs.  Accepts
    ["fingers"], ["harmonic-<k>"] (bare ["harmonic"] = k 8),
    ["chord"], ["kademlia-<b>"] (bare ["kademlia"] = b 2), and
    ["successor-only"]. *)

type t

val create : ring:Ring.t -> policy:policy -> rng:D2_util.Rng.t -> t
(** Build link tables for every current member.
    @raise Invalid_argument on an empty ring. *)

val rebuild : t -> unit
(** Refresh tables after ring membership/ID changes.  Epoch-stamped:
    a no-op when {!Ring.epoch} is unchanged; when only IDs moved
    ([change_id] churn, ring size constant) rank-independent policies
    ([Fingers]/[Kademlia]/[Successor_only]) just restamp, [Harmonic]
    re-samples only nodes it has never seen (survivors keep their
    links), and [Chord] — whose every table depends on the global ID
    layout — falls back to a full rebuild. *)

val policy : t -> policy

val built_epoch : t -> int
(** The {!Ring.epoch} the current tables were built at (tests). *)

val links_of : t -> node:int -> int list
(** This node's outgoing links (node handles), successor first. *)

val route : t -> src:int -> key:D2_keyspace.Key.t -> int list
(** Greedy clockwise route: the sequence of nodes after [src], ending
    with the key's owner ([[]] if [src] owns the key).  Its length is
    {!hops}; a full lookup costs [hops + 1] messages (see the module
    header). *)

val hops : t -> src:int -> key:D2_keyspace.Key.t -> int
(** Length of [route t ~src ~key], counted by the same iterative
    kernel without building the path — allocation-free.  Forwarding
    steps only, the final reply excluded; 0 when [src] owns the key. *)

val route_alpha : t -> src:int -> key:D2_keyspace.Key.t -> alpha:int -> int * int
(** α-way parallel lookup: up to [alpha] frontiers start at the α
    best (farthest non-overshooting) distinct next hops of [src] and
    advance greedily in lockstep; the lookup concludes when the first
    frontier reaches the owner.  Returns [(hops, messages)] — [hops]
    is the number of lockstep rounds to first arrival (never more than
    {!hops}, since the best frontier follows the single-path greedy
    route exactly) and [messages] the query/reply exchanges issued
    ([= hops] when [alpha = 1]; colliding frontiers merge and are not
    double-counted).  [(0, 0)] when [src] owns the key.
    Allocation-free; [alpha] is clamped to 16.
    @raise Invalid_argument if [alpha < 1]. *)

val route_reference : t -> src:int -> key:D2_keyspace.Key.t -> int list
(** The original recursive list-building implementation, retained as
    the oracle for the equivalence test; same answers as {!route} for
    every policy (it reads the same compiled jump tables, so it is
    policy-agnostic by construction). *)
