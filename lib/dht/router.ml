module Key = D2_keyspace.Key
module Rng = D2_util.Rng

type policy = Fingers | Harmonic of int | Successor_only

let policy_name = function
  | Fingers -> "fingers"
  | Harmonic k -> Printf.sprintf "harmonic-%d" k
  | Successor_only -> "successor-only"

(* Link tables compiled to one dense jump-table array: rank [r]'s
   sorted outgoing rank-offsets live in [jt.(jidx.(r)) ..
   jt.(jidx.(r+1) - 1)].  The greedy kernel walks it iteratively — a
   binary search for the farthest non-overshooting link per hop, no
   cons cell, no closure — so hop counting allocates nothing. *)
type t = {
  ring : Ring.t;
  pol : policy;
  rng : Rng.t;
  mutable jt : int array;  (** concatenated per-rank offsets, each run sorted *)
  mutable jidx : int array;  (** length [built_n + 1]: run boundaries *)
  mutable built_n : int;  (** ring size the tables were built for *)
}

(* Sample a rank offset in [1, n) with P(d) ∝ 1/d. *)
let harmonic_offset rng n =
  let u = Rng.float rng 1.0 in
  let d = int_of_float (float_of_int n ** u) in
  max 1 (min (n - 1) d)

let build_tables t =
  let n = Ring.size t.ring in
  let jidx = Array.make (n + 1) 0 in
  let buf = ref (Array.make (max 16 (4 * n)) 0) in
  let len = ref 0 in
  for rank = 0 to n - 1 do
    let offs =
      match t.pol with
      | Successor_only -> [ 1 ]
      | Fingers ->
          let rec powers acc p = if p >= n then acc else powers (p :: acc) (2 * p) in
          powers [] 1
      | Harmonic k ->
          ignore rank;
          1 :: List.init (max 0 k) (fun _ -> harmonic_offset t.rng n)
    in
    let offs = List.sort_uniq compare (List.filter (fun d -> d >= 1 && d < n) offs) in
    List.iter
      (fun d ->
        if !len = Array.length !buf then begin
          let b = Array.make (2 * !len) 0 in
          Array.blit !buf 0 b 0 !len;
          buf := b
        end;
        !buf.(!len) <- d;
        incr len)
      offs;
    jidx.(rank + 1) <- !len
  done;
  t.jt <- Array.sub !buf 0 !len;
  t.jidx <- jidx;
  t.built_n <- n

let create ~ring ~policy ~rng =
  if Ring.size ring = 0 then invalid_arg "Router.create: empty ring";
  let t = { ring; pol = policy; rng; jt = [||]; jidx = [||]; built_n = 0 } in
  build_tables t;
  t

let rebuild t = build_tables t

let policy t = t.pol

let links_of t ~node =
  let n = Ring.size t.ring in
  let rank = Ring.rank_of t.ring ~node in
  List.init
    (t.jidx.(rank + 1) - t.jidx.(rank))
    (fun i -> Ring.node_at t.ring ((rank + t.jt.(t.jidx.(rank) + i)) mod n))

let check_current t n =
  if n <> t.built_n then
    invalid_arg "Router.route: ring changed since build; call rebuild"

(* Farthest offset of [rank] that does not exceed [d]: the runs are
   sorted and always start with offset 1, so this is the predecessor
   of [d+1] by binary search. *)
let best_offset t rank d =
  let jt = t.jt in
  let lo = ref t.jidx.(rank) and hi = ref t.jidx.(rank + 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) lsr 1 in
    if Array.unsafe_get jt mid <= d then lo := mid else hi := mid
  done;
  Array.unsafe_get jt !lo

(* The iterative greedy kernel: advance [rank] toward [target], one
   call to [visit] per hop.  [visit] is a known local function at both
   call sites below, so the loop runs unboxed and cons-free. *)
let walk t ~src ~key visit =
  let n = Ring.size t.ring in
  check_current t n;
  let owner = Ring.successor t.ring key in
  let target = Ring.rank_of t.ring ~node:owner in
  let rank = ref (Ring.rank_of t.ring ~node:src) in
  let steps = ref 0 in
  while ((target - !rank) mod n + n) mod n <> 0 do
    if !steps > 2 * n then invalid_arg "Router.route: routing did not converge";
    let d = ((target - !rank) mod n + n) mod n in
    rank := (!rank + best_offset t !rank d) mod n;
    visit !rank;
    incr steps
  done

let route t ~src ~key =
  let acc = ref [] in
  walk t ~src ~key (fun rank -> acc := Ring.node_at t.ring rank :: !acc);
  List.rev !acc

let hops t ~src ~key =
  let count = ref 0 in
  walk t ~src ~key (fun _ -> incr count);
  !count

(* The original recursive list-building implementation (per-hop cons,
   linear best-link scan), retained verbatim in shape as the oracle
   for the equivalence test: the compiled kernel must produce the same
   hop sequence on any ring the tables were built for. *)
let route_reference t ~src ~key =
  let n = Ring.size t.ring in
  check_current t n;
  let owner = Ring.successor t.ring key in
  let target = Ring.rank_of t.ring ~node:owner in
  let rec go rank acc steps =
    if steps > 2 * n then invalid_arg "Router.route: routing did not converge"
    else begin
      let d = ((target - rank) mod n + n) mod n in
      if d = 0 then List.rev acc
      else begin
        (* Farthest link that does not overshoot the owner. *)
        let best = ref 1 in
        for i = t.jidx.(rank) to t.jidx.(rank + 1) - 1 do
          let off = t.jt.(i) in
          if off <= d && off > !best then best := off
        done;
        let next = (rank + !best) mod n in
        go next (Ring.node_at t.ring next :: acc) (steps + 1)
      end
    end
  in
  go (Ring.rank_of t.ring ~node:src) [] 0
