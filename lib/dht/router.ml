module Key = D2_keyspace.Key
module Rng = D2_util.Rng

type policy =
  | Fingers
  | Harmonic of int
  | Chord
  | Kademlia of int
  | Successor_only

let policy_name = function
  | Fingers -> "fingers"
  | Harmonic k -> Printf.sprintf "harmonic-%d" k
  | Chord -> "chord"
  | Kademlia b -> Printf.sprintf "kademlia-%d" b
  | Successor_only -> "successor-only"

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "fingers" -> Some Fingers
  | "chord" -> Some Chord
  | "successor-only" | "successor_only" | "walk" -> Some Successor_only
  | s -> (
      let parse prefix mk dflt =
        if s = prefix then Some (mk dflt)
        else
          let pl = String.length prefix in
          if
            String.length s > pl + 1
            && String.sub s 0 pl = prefix
            && s.[pl] = '-'
          then
            match int_of_string_opt (String.sub s (pl + 1) (String.length s - pl - 1)) with
            | Some k when k >= 1 -> Some (mk k)
            | _ -> None
          else None
      in
      match parse "harmonic" (fun k -> Harmonic k) 8 with
      | Some p -> Some p
      | None -> parse "kademlia" (fun b -> Kademlia b) 2)

(* Link tables compiled to one dense jump-table array: rank [r]'s
   sorted outgoing rank-offsets live in [jt.(jidx.(r)) ..
   jt.(jidx.(r+1) - 1)].  The greedy kernel walks it iteratively — a
   binary search for the farthest non-overshooting link per hop, no
   cons cell, no closure — so hop counting allocates nothing.  All
   five policies compile through {!build_tables} into this same
   layout; the kernels never know which policy produced the runs. *)
type t = {
  ring : Ring.t;
  pol : policy;
  rng : Rng.t;
  mutable jt : int array;  (** concatenated per-rank offsets, each run sorted *)
  mutable jidx : int array;  (** length [built_n + 1]: run boundaries *)
  mutable built_n : int;  (** ring size the tables were built for *)
  mutable built_epoch : int;  (** {!Ring.epoch} the tables were built at *)
  samples : (int, int array) Hashtbl.t;
      (** [Harmonic]: node handle -> its retained raw rank offsets, so
          an incremental rebuild keeps surviving members' links stable
          (Symphony re-samples only the joiner, not the whole ring) *)
  mutable frontier : int array;  (** {!route_alpha} scratch: frontier ranks *)
}

let max_alpha = 16

(* Sample a rank offset in [1, n) with P(d) ∝ 1/d. *)
let harmonic_offset rng n =
  let u = Rng.float rng 1.0 in
  let d = int_of_float (float_of_int n ** u) in
  max 1 (min (n - 1) d)

let harmonic_samples t ~node n k =
  match Hashtbl.find_opt t.samples node with
  | Some offs -> offs
  | None ->
      let offs = Array.init (max 0 k) (fun _ -> harmonic_offset t.rng n) in
      Hashtbl.replace t.samples node offs;
      offs

(* Whether every rank gets the same offset run (the run depends only
   on the ring size, never on the node's identity or position). *)
let rank_independent = function
  | Fingers | Kademlia _ | Successor_only -> true
  | Harmonic _ | Chord -> false

(* {2 Per-policy offset generators}

   Each returns the sorted, deduplicated rank offsets of one rank, as
   a list with every element in [1, n); offset 1 (the successor) is
   always present, which is what guarantees the greedy kernel
   terminates for any policy. *)

let fingers_offsets n =
  let rec powers acc p = if p >= n then acc else powers (p :: acc) (2 * p) in
  powers [] 1

(* Kademlia-style buckets over rank distance: bucket j covers
   [2^j, 2^(j+1)), and instead of one contact per bucket the node
   keeps [b] evenly spaced contacts — the b-way bucket overlap that
   lets each hop resolve log2(b) extra bits of distance, the
   lightweight tail-latency trick of the Kademlia-type lookup paper.
   b = 1 degenerates to plain fingers. *)
let kademlia_offsets n b =
  let acc = ref [] in
  let j = ref 1 in
  while !j < n do
    let width = !j in
    for s = 0 to b - 1 do
      let off = width + (s * width / b) in
      if off >= 1 && off < n && off < 2 * width then acc := off :: !acc
    done;
    j := 2 * width
  done;
  1 :: !acc

(* Chord-style fingers in {e key space}: node with ID at position p
   links to the owner of p + 2^i for every i — textbook Chord when IDs
   are uniform hashes.  Positions are the order-preserving 62-bit
   prefix of each member ID, so under D2's locality-preserving ID
   assignment (clustered IDs) most finger targets collapse into the
   same inter-cluster gap and routing degrades toward successor
   walking: exactly the non-uniform-keyspace failure mode Mercury's
   rank links (our [Fingers]) were designed to avoid. *)
let chord_span = 62

let chord_mask = (1 lsl chord_span) - 1

(* First rank whose position is >= [target], wrapping to 0; [pos] is
   non-decreasing because ranks are ID-sorted. *)
let chord_successor_rank pos n target =
  if target > pos.(n - 1) then 0
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) lsr 1 in
      if pos.(mid) < target then lo := mid + 1 else hi := mid
    done;
    !lo
  end

let chord_offsets pos n rank =
  let p = pos.(rank) in
  let acc = ref [ 1 ] in
  for i = 0 to chord_span - 1 do
    let target = (p + (1 lsl i)) land chord_mask in
    let rb = chord_successor_rank pos n target in
    let off = ((rb - rank) mod n + n) mod n in
    if off >= 1 then acc := off :: !acc
  done;
  !acc

(* {2 The policy-agnostic table builder} *)

let append buf len offs =
  List.iter
    (fun d ->
      if !len = Array.length !buf then begin
        let b = Array.make (2 * !len) 0 in
        Array.blit !buf 0 b 0 !len;
        buf := b
      end;
      !buf.(!len) <- d;
      incr len)
    offs

let clean n offs = List.sort_uniq compare (List.filter (fun d -> d >= 1 && d < n) offs)

let build_tables t =
  let n = Ring.size t.ring in
  let jidx = Array.make (n + 1) 0 in
  let buf = ref (Array.make (max 16 (4 * n)) 0) in
  let len = ref 0 in
  (if rank_independent t.pol then begin
     (* One shared run, replicated per rank: the offsets depend only
        on [n], so compute them once and blit. *)
     let run =
       Array.of_list
         (clean n
            (match t.pol with
            | Successor_only -> [ 1 ]
            | Fingers -> fingers_offsets n
            | Kademlia b -> kademlia_offsets n (max 1 b)
            | Harmonic _ | Chord -> assert false))
     in
     let l = Array.length run in
     let total = n * l in
     if total > Array.length !buf then buf := Array.make (max 16 total) 0;
     for rank = 0 to n - 1 do
       Array.blit run 0 !buf (rank * l) l;
       jidx.(rank + 1) <- (rank + 1) * l
     done;
     len := total
   end
   else begin
     let pos =
       match t.pol with
       | Chord ->
           Array.init n (fun r ->
               Key.prefix_at (Ring.id_of t.ring ~node:(Ring.node_at t.ring r)) 0)
       | _ -> [||]
     in
     for rank = 0 to n - 1 do
       let offs =
         match t.pol with
         | Harmonic k ->
             let node = Ring.node_at t.ring rank in
             1 :: Array.to_list (harmonic_samples t ~node n k)
         | Chord -> chord_offsets pos n rank
         | Fingers | Kademlia _ | Successor_only -> assert false
       in
       append buf len (clean n offs);
       jidx.(rank + 1) <- !len
     done
   end);
  t.jt <- Array.sub !buf 0 !len;
  t.jidx <- jidx;
  t.built_n <- n;
  t.built_epoch <- Ring.epoch t.ring

let create ~ring ~policy ~rng =
  if Ring.size ring = 0 then invalid_arg "Router.create: empty ring";
  let t =
    {
      ring;
      pol = policy;
      rng;
      jt = [||];
      jidx = [||];
      built_n = 0;
      built_epoch = -1;
      samples = Hashtbl.create 16;
      frontier = Array.make max_alpha 0;
    }
  in
  build_tables t;
  t

(* Drop retained harmonic samples of departed members once they
   outnumber the ring (lazy pruning keeps [rebuild] O(members)). *)
let prune_samples t =
  let n = Ring.size t.ring in
  if Hashtbl.length t.samples > 2 * n + 16 then begin
    let stale =
      Hashtbl.fold
        (fun node _ acc -> if Ring.mem t.ring ~node then acc else node :: acc)
        t.samples []
    in
    List.iter (Hashtbl.remove t.samples) stale
  end

(* Epoch-stamped incremental rebuild: a no-op when the ring has not
   changed; a stamp-only refresh when the tables cannot have changed
   (rank-independent policy, same size — e.g. [change_id] churn); a
   members-only refresh for [Harmonic] (surviving nodes keep their
   retained samples, only joiners are sampled); and a full rebuild
   otherwise ([Chord] couples every run to the global ID layout). *)
let rebuild t =
  if Ring.size t.ring = 0 then invalid_arg "Router.rebuild: empty ring";
  let epoch = Ring.epoch t.ring in
  if epoch <> t.built_epoch then
    if rank_independent t.pol && Ring.size t.ring = t.built_n then
      t.built_epoch <- epoch
    else begin
      prune_samples t;
      build_tables t
    end

let policy t = t.pol

let built_epoch t = t.built_epoch

let links_of t ~node =
  let n = Ring.size t.ring in
  let rank = Ring.rank_of t.ring ~node in
  List.init
    (t.jidx.(rank + 1) - t.jidx.(rank))
    (fun i -> Ring.node_at t.ring ((rank + t.jt.(t.jidx.(rank) + i)) mod n))

let check_current t =
  if Ring.epoch t.ring <> t.built_epoch then
    invalid_arg "Router.route: ring changed since build; call rebuild"

(* Farthest offset of [rank] that does not exceed [d]: the runs are
   sorted and always start with offset 1, so this is the predecessor
   of [d+1] by binary search. *)
let best_offset t rank d =
  let jt = t.jt in
  let lo = ref t.jidx.(rank) and hi = ref t.jidx.(rank + 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) lsr 1 in
    if Array.unsafe_get jt mid <= d then lo := mid else hi := mid
  done;
  Array.unsafe_get jt !lo

(* The iterative greedy kernel: advance [rank] toward [target], one
   call to [visit] per hop.  [visit] is a known local function at both
   call sites below, so the loop runs unboxed and cons-free. *)
let walk t ~src ~key visit =
  check_current t;
  let n = Ring.size t.ring in
  let owner = Ring.successor t.ring key in
  let target = Ring.rank_of t.ring ~node:owner in
  let rank = ref (Ring.rank_of t.ring ~node:src) in
  let steps = ref 0 in
  while ((target - !rank) mod n + n) mod n <> 0 do
    if !steps > 2 * n then invalid_arg "Router.route: routing did not converge";
    let d = ((target - !rank) mod n + n) mod n in
    rank := (!rank + best_offset t !rank d) mod n;
    visit !rank;
    incr steps
  done

let route t ~src ~key =
  let acc = ref [] in
  walk t ~src ~key (fun rank -> acc := Ring.node_at t.ring rank :: !acc);
  List.rev !acc

let hops t ~src ~key =
  let count = ref 0 in
  walk t ~src ~key (fun _ -> incr count);
  !count

(* α-way parallel lookup kernel: up to [alpha] frontiers start at the
   α {e best} (farthest non-overshooting) distinct next hops of [src]
   and advance greedily in lockstep rounds; the lookup concludes when
   the first frontier reaches the owner.  Frontier 0 follows exactly
   the single-path greedy route, so the effective hop count can never
   exceed {!hops} — the extra frontiers only buy insurance (against a
   slow or dead best hop, in the live runtime) at the price of extra
   messages.  Returns [(hops, messages)]: [hops] is the number of
   lockstep rounds until the first arrival and [messages] the number
   of query/reply exchanges issued (= [hops] when [alpha = 1]); both
   are 0 when [src] owns the key.  Frontiers that collide are merged,
   so duplicated work is never double-counted.  Allocation-free: the
   frontier scratch lives in [t]. *)
let route_alpha t ~src ~key ~alpha =
  if alpha < 1 then invalid_arg "Router.route_alpha: alpha must be >= 1";
  check_current t;
  let alpha = min alpha max_alpha in
  let n = Ring.size t.ring in
  let owner = Ring.successor t.ring key in
  let target = Ring.rank_of t.ring ~node:owner in
  let src_rank = Ring.rank_of t.ring ~node:src in
  let dist rank = ((target - rank) mod n + n) mod n in
  let d0 = dist src_rank in
  if d0 = 0 then (0, 0)
  else begin
    let fr = t.frontier in
    (* Seed the frontiers with the α largest non-overshooting offsets
       of [src] — its best α next hops — scanning the sorted run
       backward from the predecessor of d0+1. *)
    let base = t.jidx.(src_rank) in
    let hi = ref (t.jidx.(src_rank + 1) - 1) in
    while !hi > base && t.jt.(!hi) > d0 do
      decr hi
    done;
    let live = ref 0 in
    let i = ref !hi in
    while !live < alpha && !i >= base do
      if t.jt.(!i) <= d0 then begin
        fr.(!live) <- (src_rank + t.jt.(!i)) mod n;
        incr live
      end;
      decr i
    done;
    let messages = ref !live in
    let hops = ref 1 in
    let arrived = ref false in
    for f = 0 to !live - 1 do
      if dist fr.(f) = 0 then arrived := true
    done;
    while not !arrived do
      if !hops > 2 * n then
        invalid_arg "Router.route_alpha: routing did not converge";
      (* Advance every frontier one greedy hop, dropping duplicates. *)
      let nlive = ref 0 in
      for f = 0 to !live - 1 do
        let d = dist fr.(f) in
        let next = (fr.(f) + best_offset t fr.(f) d) mod n in
        incr messages;
        let dup = ref false in
        for g = 0 to !nlive - 1 do
          if fr.(g) = next then dup := true
        done;
        if not !dup then begin
          fr.(!nlive) <- next;
          incr nlive
        end
      done;
      live := !nlive;
      incr hops;
      for f = 0 to !live - 1 do
        if dist fr.(f) = 0 then arrived := true
      done
    done;
    (!hops, !messages)
  end

(* The original recursive list-building implementation (per-hop cons,
   linear best-link scan), retained verbatim in shape as the oracle
   for the equivalence test: the compiled kernel must produce the same
   hop sequence on any ring the tables were built for.  It reads the
   same jump tables, so it is policy-agnostic — one oracle for all
   five policies. *)
let route_reference t ~src ~key =
  check_current t;
  let n = Ring.size t.ring in
  let owner = Ring.successor t.ring key in
  let target = Ring.rank_of t.ring ~node:owner in
  let rec go rank acc steps =
    if steps > 2 * n then invalid_arg "Router.route: routing did not converge"
    else begin
      let d = ((target - rank) mod n + n) mod n in
      if d = 0 then List.rev acc
      else begin
        (* Farthest link that does not overshoot the owner. *)
        let best = ref 1 in
        for i = t.jidx.(rank) to t.jidx.(rank + 1) - 1 do
          let off = t.jt.(i) in
          if off <= d && off > !best then best := off
        done;
        let next = (rank + !best) mod n in
        go next (Ring.node_at t.ring next :: acc) (steps + 1)
      end
    end
  in
  go (Ring.rank_of t.ring ~node:src) [] 0
