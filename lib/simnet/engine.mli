(** Deterministic discrete-event engine over virtual time.

    This replaces the paper's libasync event loop and drives the
    availability and load-balancing simulations: failures, repairs,
    balancer probes, pointer stabilization and block migrations are all
    events.  Time is in virtual seconds; events at equal times fire in
    scheduling order, so runs are fully deterministic. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

val create : ?granularity:float -> unit -> t
(** [granularity] is the timer-wheel tick width in virtual seconds and
    defaults to [D2_WHEEL_G] (else 1.0).  Firing order is identical at
    any setting; the width only tunes how many cells share a wheel
    slot (coarse) versus how often levels cascade (fine).  High-rate
    schedulers like the fleet layer pass a tick sized to a few cells
    per slot.  @raise Invalid_argument if not positive. *)

val now : t -> float
(** Current virtual time, in seconds. Starts at 0. *)

val schedule : t -> at:float -> (unit -> unit) -> handle
(** Fire a callback at an absolute time.
    @raise Invalid_argument if [at] is in the past. *)

val schedule_in : t -> delay:float -> (unit -> unit) -> handle
(** Fire a callback [delay] seconds from now ([delay] ≥ 0). *)

val cancel : handle -> unit
(** Cancelled events are skipped when their time comes. Idempotent. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    reaped, and posted cells not yet fired). *)

(** {1 Timer-wheel cells}

    High-volume schedulers (the block store's expiry, stabilization
    and transfer timers) avoid one closure + heap entry per timer by
    {e posting cells}: unboxed [(tag, payload)] pairs delivered to a
    pre-registered sink callback.  Cells are filed in a hierarchical
    timer wheel (3 levels × 256 slots of [D2_WHEEL_G] seconds each,
    default 1.0; timers beyond the wheel's 2^24-tick horizon fall back
    to the event heap transparently).

    Cells interleave deterministically with closure events: both draw
    sequence numbers from the same counter, and {!run} fires the
    merged streams in exact (time, scheduling-order) order.  Cells
    cannot be cancelled — encode revocation in the payload (the block
    store uses generation counters). *)

type sink
(** A registered cell-delivery callback. *)

val register_sink : t -> (int -> int -> unit) -> sink
(** [register_sink t f] registers [f] to receive this engine's cells:
    a cell posted with [~tag ~payload] fires as [f tag payload]. *)

val post : t -> sink:sink -> at:float -> tag:int -> payload:int -> unit
(** Fire a cell at an absolute time.
    @raise Invalid_argument if [at] is in the past. *)

val post_in : t -> sink:sink -> delay:float -> tag:int -> payload:int -> unit
(** Fire a cell [delay] seconds from now ([delay] ≥ 0). *)

val run : ?until:float -> t -> unit
(** Process events in time order.  With [until], stops once the clock
    would pass it (the clock is then advanced exactly to [until]);
    without, runs until the queue drains. *)

val every : t -> period:float -> ?until:float -> (unit -> unit) -> unit
(** Convenience: run a callback periodically starting one period from
    now, stopping after [until] when given. *)
