module Rng = D2_util.Rng

type t = {
  n : int;
  xs : float array;
  ys : float array;
  intra_rtt : float;
  jitter : float array;  (** per-node last-mile latency component *)
}

let create ?(clusters = 8) ?(intra_rtt = 0.02) ?(spread = 0.28) ~rng ~n () =
  if n <= 0 then invalid_arg "Topology.create: n must be positive";
  if clusters <= 0 then invalid_arg "Topology.create: clusters must be positive";
  let cx = Array.init clusters (fun _ -> Rng.float rng spread) in
  let cy = Array.init clusters (fun _ -> Rng.float rng spread) in
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
  let jitter = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let c = Rng.int rng clusters in
    (* Nodes scatter around their site within ~intra_rtt of it. *)
    xs.(i) <- cx.(c) +. Rng.normal rng ~mean:0.0 ~stddev:(intra_rtt /. 2.0);
    ys.(i) <- cy.(c) +. Rng.normal rng ~mean:0.0 ~stddev:(intra_rtt /. 2.0);
    jitter.(i) <- Rng.float rng (intra_rtt /. 2.0)
  done;
  { n; xs; ys; intra_rtt; jitter }

let size t = t.n

let rtt t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then
    invalid_arg "Topology.rtt: node index out of range";
  if i = j then 0.0005
  else begin
    let dx = t.xs.(i) -. t.xs.(j) and dy = t.ys.(i) -. t.ys.(j) in
    let dist = sqrt ((dx *. dx) +. (dy *. dy)) in
    t.intra_rtt +. dist +. t.jitter.(i) +. t.jitter.(j)
  end

let one_way t i j = rtt t i j /. 2.0

let mean_rtt t =
  if t.n < 2 then 0.0
  else begin
    (* Sample a deterministic subset of pairs; exact mean for small n. *)
    let acc = ref 0.0 and count = ref 0 in
    let step = max 1 (t.n * (t.n - 1) / 2 / 20_000) in
    let k = ref 0 in
    for i = 0 to t.n - 1 do
      for j = i + 1 to t.n - 1 do
        if !k mod step = 0 then begin
          acc := !acc +. rtt t i j;
          incr count
        end;
        incr k
      done
    done;
    !acc /. float_of_int !count
  end
