module Heap = D2_util.Heap

type handle = { mutable cancelled : bool }

type event = { time : float; seq : int; fn : unit -> unit; h : handle }

(* {1 Timer-wheel cells}

   Closure events (above) pay one heap entry plus a closure allocation
   each.  The block store schedules hundreds of thousands of uniform
   timers per simulation — expiries, pointer-stabilization fetches,
   bandwidth-paced arrivals — so those are posted as {e cells}: an
   unboxed (time, seq, tag, payload, sink) row in a struct-of-arrays
   pool, filed into a 3-level hierarchical timer wheel (256 slots per
   level, [granularity] seconds per tick; [D2_WHEEL_G] overrides).
   Timers beyond the wheel's 2^24-tick range fall back to the closure
   heap, so range never limits correctness.

   Determinism: cells draw their [seq] from the same counter as
   closure events, and the run loop merges the wheel's due cells with
   the heap by exact (time, seq) — a cell and a closure scheduled for
   the same instant fire in scheduling order, exactly as two closures
   would.  The wheel only buckets by coarse tick; due cells are
   re-ordered precisely through a small ready-heap before firing. *)

type sink = int

type t = {
  queue : event Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  granularity : float;
  mutable cursor : int;  (* last tick fully surfaced into [ready] *)
  (* cell pool columns; [c_next] doubles as slot chain and free list *)
  mutable c_time : float array;
  mutable c_seq : int array;
  mutable c_tag : int array;
  mutable c_payload : int array;
  mutable c_sink : int array;
  mutable c_next : int array;
  mutable c_tick : int array;
  mutable pool_used : int;  (* high-water mark of the pool *)
  mutable free_cell : int;  (* free-list head, -1 when empty *)
  (* wheel levels: head cell of each slot's chain, -1 when empty *)
  l0 : int array;
  l1 : int array;
  l2 : int array;
  mutable n0 : int;
  mutable n1 : int;
  mutable n2 : int;
  (* cells whose tick has been reached, as a binary min-heap of pool
     ids ordered by (time, seq) *)
  mutable ready : int array;
  mutable nready : int;
  mutable sinks : (int -> int -> unit) array;
  mutable nsinks : int;
}

let compare_events a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let default_granularity () =
  match Sys.getenv_opt "D2_WHEEL_G" with
  | Some s -> (
      match float_of_string_opt s with
      | Some g when g > 0.0 -> g
      | _ -> invalid_arg "D2_WHEEL_G: expected a positive number")
  | None -> 1.0

let no_sink : int -> int -> unit = fun _ _ -> ()

let create ?granularity () =
  (match granularity with
  | Some g when g <= 0.0 ->
      invalid_arg "Engine.create: granularity must be positive"
  | _ -> ());
  {
    queue = Heap.create ~cmp:compare_events;
    clock = 0.0;
    next_seq = 0;
    granularity =
      (match granularity with Some g -> g | None -> default_granularity ());
    cursor = 0;
    c_time = [||];
    c_seq = [||];
    c_tag = [||];
    c_payload = [||];
    c_sink = [||];
    c_next = [||];
    c_tick = [||];
    pool_used = 0;
    free_cell = -1;
    l0 = Array.make 256 (-1);
    l1 = Array.make 256 (-1);
    l2 = Array.make 256 (-1);
    n0 = 0;
    n1 = 0;
    n2 = 0;
    ready = [||];
    nready = 0;
    sinks = Array.make 4 no_sink;
    nsinks = 0;
  }

let now t = t.clock

let schedule t ~at fn =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now (%g)" at t.clock);
  let h = { cancelled = false } in
  Heap.push t.queue { time = at; seq = t.next_seq; fn; h };
  t.next_seq <- t.next_seq + 1;
  h

let schedule_in t ~delay fn =
  if delay < 0.0 then invalid_arg "Engine.schedule_in: negative delay";
  schedule t ~at:(t.clock +. delay) fn

let cancel h = h.cancelled <- true

(* {1 Cell pool and ready-heap plumbing} *)

let register_sink t fn =
  if t.nsinks = Array.length t.sinks then begin
    let ns = Array.make (2 * t.nsinks) no_sink in
    Array.blit t.sinks 0 ns 0 t.nsinks;
    t.sinks <- ns
  end;
  let id = t.nsinks in
  t.sinks.(id) <- fn;
  t.nsinks <- id + 1;
  id

let grow_pool t =
  let cap = Array.length t.c_time in
  let ncap = max 64 (2 * cap) in
  let gf a = let n = Array.make ncap 0.0 in Array.blit a 0 n 0 cap; n in
  let gi a = let n = Array.make ncap 0 in Array.blit a 0 n 0 cap; n in
  t.c_time <- gf t.c_time;
  t.c_seq <- gi t.c_seq;
  t.c_tag <- gi t.c_tag;
  t.c_payload <- gi t.c_payload;
  t.c_sink <- gi t.c_sink;
  t.c_next <- gi t.c_next;
  t.c_tick <- gi t.c_tick

let alloc_cell t =
  if t.free_cell >= 0 then begin
    let c = t.free_cell in
    t.free_cell <- t.c_next.(c);
    c
  end
  else begin
    if t.pool_used = Array.length t.c_time then grow_pool t;
    let c = t.pool_used in
    t.pool_used <- c + 1;
    c
  end

let free_cell t c =
  t.c_next.(c) <- t.free_cell;
  t.free_cell <- c

(* Ready-heap: pool ids ordered by (c_time, c_seq). *)

let cell_before t a b =
  let ta = t.c_time.(a) and tb = t.c_time.(b) in
  if ta < tb then true
  else if ta > tb then false
  else t.c_seq.(a) < t.c_seq.(b)

let ready_push t c =
  if t.nready = Array.length t.ready then begin
    let ncap = max 32 (2 * t.nready) in
    let nr = Array.make ncap 0 in
    Array.blit t.ready 0 nr 0 t.nready;
    t.ready <- nr
  end;
  let i = ref t.nready in
  t.nready <- t.nready + 1;
  t.ready.(!i) <- c;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) lsr 1 in
    if cell_before t t.ready.(!i) t.ready.(parent) then begin
      let tmp = t.ready.(parent) in
      t.ready.(parent) <- t.ready.(!i);
      t.ready.(!i) <- tmp;
      i := parent
    end
    else continue_ := false
  done

let ready_pop t =
  let root = t.ready.(0) in
  t.nready <- t.nready - 1;
  if t.nready > 0 then begin
    t.ready.(0) <- t.ready.(t.nready);
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.nready && cell_before t t.ready.(l) t.ready.(!smallest) then
        smallest := l;
      if r < t.nready && cell_before t t.ready.(r) t.ready.(!smallest) then
        smallest := r;
      if !smallest <> !i then begin
        let tmp = t.ready.(!smallest) in
        t.ready.(!smallest) <- t.ready.(!i);
        t.ready.(!i) <- tmp;
        i := !smallest
      end
      else continue_ := false
    done
  end;
  root

(* {1 The wheel}

   Level l holds cells whose tick agrees with the cursor on all digit
   positions above l (base 256) — so a slot is drained exactly when
   the cursor's digit reaches it, and a cascaded cell always re-files
   strictly below.  Inserts past level 2's horizon (2^24 ticks) fall
   back to the closure heap at {!post}. *)

let wheel_count t = t.n0 + t.n1 + t.n2

let push_slot t (arr : int array) slot c =
  t.c_next.(c) <- arr.(slot);
  arr.(slot) <- c

(* File a cell whose tick is already known; tick <= cursor goes
   straight to ready.  Never called for out-of-range ticks (post
   filters those to the heap; cascades only shorten the range). *)
let insert_cell t c =
  let tick = t.c_tick.(c) in
  if tick <= t.cursor then ready_push t c
  else if tick - t.cursor < 256 then begin
    push_slot t t.l0 (tick land 255) c;
    t.n0 <- t.n0 + 1
  end
  else if (tick lsr 8) - (t.cursor lsr 8) < 256 then begin
    push_slot t t.l1 ((tick lsr 8) land 255) c;
    t.n1 <- t.n1 + 1
  end
  else begin
    push_slot t t.l2 ((tick lsr 16) land 255) c;
    t.n2 <- t.n2 + 1
  end

(* Advance the cursor one tick: cascade upper levels at their digit
   boundaries, then surface the current L0 slot into [ready]. *)
let advance_one t =
  t.cursor <- t.cursor + 1;
  if t.cursor land 255 = 0 then begin
    if t.cursor land 65535 = 0 then begin
      let slot = (t.cursor lsr 16) land 255 in
      let c = ref t.l2.(slot) in
      t.l2.(slot) <- -1;
      while !c >= 0 do
        let nx = t.c_next.(!c) in
        t.n2 <- t.n2 - 1;
        insert_cell t !c;
        c := nx
      done
    end;
    let slot = (t.cursor lsr 8) land 255 in
    let c = ref t.l1.(slot) in
    t.l1.(slot) <- -1;
    while !c >= 0 do
      let nx = t.c_next.(!c) in
      t.n1 <- t.n1 - 1;
      insert_cell t !c;
      c := nx
    done
  end;
  let slot = t.cursor land 255 in
  let c = ref t.l0.(slot) in
  if !c >= 0 then begin
    t.l0.(slot) <- -1;
    while !c >= 0 do
      let nx = t.c_next.(!c) in
      t.n0 <- t.n0 - 1;
      ready_push t !c;
      c := nx
    done
  end

(* Surface every cell with tick <= target into [ready].  Empty levels
   let the cursor jump whole 256- or 65536-tick strides, so idle
   stretches cost O(1) per cascade boundary rather than per tick. *)
let advance_to t target =
  while t.cursor < target && wheel_count t > 0 do
    if t.n0 = 0 then begin
      let next_boundary =
        if t.n1 = 0 then ((t.cursor lsr 16) + 1) lsl 16
        else ((t.cursor lsr 8) + 1) lsl 8
      in
      if target < next_boundary then t.cursor <- target
      else begin
        t.cursor <- next_boundary - 1;
        advance_one t
      end
    end
    else advance_one t
  done;
  if wheel_count t = 0 && t.cursor < target then t.cursor <- target

(* Advance until some cell is due (wheel known non-empty). *)
let surface_next t =
  while t.nready = 0 && wheel_count t > 0 do
    if t.n0 = 0 then begin
      let next_boundary =
        if t.n1 = 0 then ((t.cursor lsr 16) + 1) lsl 16
        else ((t.cursor lsr 8) + 1) lsl 8
      in
      t.cursor <- next_boundary - 1;
      advance_one t
    end
    else advance_one t
  done

let tick_of t at = int_of_float (at /. t.granularity)

let post t ~sink ~at ~tag ~payload =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.post: time %g is before now (%g)" at t.clock);
  if sink < 0 || sink >= t.nsinks then invalid_arg "Engine.post: unknown sink";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let tick = tick_of t at in
  if tick - t.cursor >= 1 lsl 24 then begin
    (* Beyond the wheel's horizon: fall back to a closure event.  Same
       seq draw, so ordering is unchanged. *)
    let fire = t.sinks.(sink) in
    let h = { cancelled = false } in
    Heap.push t.queue { time = at; seq; fn = (fun () -> fire tag payload); h }
  end
  else begin
    let c = alloc_cell t in
    t.c_time.(c) <- at;
    t.c_seq.(c) <- seq;
    t.c_tag.(c) <- tag;
    t.c_payload.(c) <- payload;
    t.c_sink.(c) <- sink;
    t.c_tick.(c) <- tick;
    insert_cell t c
  end

let post_in t ~sink ~delay ~tag ~payload =
  if delay < 0.0 then invalid_arg "Engine.post_in: negative delay";
  post t ~sink ~at:(t.clock +. delay) ~tag ~payload

let pending t = Heap.length t.queue + wheel_count t + t.nready

let run ?until t =
  let continue = ref true in
  while !continue do
    (* Surface wheel cells up to the earliest known candidate, so the
       pick below sees every cell that could fire before it. *)
    if wheel_count t > 0 then begin
      let bound = ref infinity in
      (match Heap.peek t.queue with Some e -> bound := e.time | None -> ());
      if t.nready > 0 && t.c_time.(t.ready.(0)) < !bound then
        bound := t.c_time.(t.ready.(0));
      if !bound < infinity then advance_to t (tick_of t !bound)
      else surface_next t
    end;
    let hm = Heap.peek t.queue in
    let cm = if t.nready > 0 then t.ready.(0) else -1 in
    let take_event =
      match (hm, cm) with
      | None, -1 -> `None
      | Some _, -1 -> `Event
      | None, _ -> `Cell
      | Some e, c ->
          if e.time < t.c_time.(c) || (e.time = t.c_time.(c) && e.seq < t.c_seq.(c))
          then `Event
          else `Cell
    in
    match take_event with
    | `None ->
        (match until with Some u when u > t.clock -> t.clock <- u | _ -> ());
        continue := false
    | `Event -> (
        let ev = Option.get hm in
        match until with
        | Some u when ev.time > u ->
            t.clock <- u;
            continue := false
        | _ ->
            ignore (Heap.pop t.queue);
            t.clock <- ev.time;
            if not ev.h.cancelled then ev.fn ())
    | `Cell -> (
        match until with
        | Some u when t.c_time.(cm) > u ->
            t.clock <- u;
            continue := false
        | _ ->
            let c = ready_pop t in
            t.clock <- t.c_time.(c);
            let fire = t.sinks.(t.c_sink.(c)) in
            let tag = t.c_tag.(c) and payload = t.c_payload.(c) in
            free_cell t c;
            fire tag payload)
  done

let every t ~period ?until fn =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  let rec tick () =
    let next = now t +. period in
    match until with
    | Some u when next > u -> ()
    | _ ->
        ignore
          (schedule t ~at:next (fun () ->
               fn ();
               tick ()))
  in
  tick ()
