(** Synthetic wide-area latency topology.

    Stands in for the paper's Emulab topology derived from measured
    latencies between thousands of DNS servers (§9.1): nodes are
    embedded near a handful of geographic cluster centres on a 2-D
    plane; RTT is the Euclidean centre distance plus intra-cluster
    spread and jitter.  Parameters default to the paper's environment
    (mean RTT ≈ 90 ms, §9.3). *)

type t

val create :
  ?clusters:int ->
  ?intra_rtt:float ->
  ?spread:float ->
  rng:D2_util.Rng.t ->
  n:int ->
  unit ->
  t
(** [create ~rng ~n ()] embeds [n] nodes.  [clusters] (default 8)
    geographic sites; [intra_rtt] (default 0.02 s) typical same-site
    RTT; [spread] (default 0.28 s) scales inter-site distance into
    RTT. *)

val size : t -> int

val rtt : t -> int -> int -> float
(** Round-trip time in seconds between two node indices; symmetric;
    [rtt t i i] is a small loopback constant.
    @raise Invalid_argument on out-of-range indices. *)

val one_way : t -> int -> int -> float
(** One-way propagation delay: [rtt /. 2].  The in-memory transport
    ({!D2_net.Transport_mem}) charges this per message delivery. *)

val mean_rtt : t -> float
(** Mean over sampled distinct pairs. *)
