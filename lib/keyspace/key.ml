type t = string

let size = 64

let of_string s =
  if String.length s <> size then
    invalid_arg
      (Printf.sprintf "Key.of_string: expected %d bytes, got %d" size
         (String.length s));
  s

let to_string t = t
let compare = String.compare
let equal = String.equal

(* {1 Comparison fast path}

   [prefix_at t off] packs the top 62 bits of bytes [off .. off+7]
   into a non-negative OCaml int.  Its ordering agrees with the
   lexicographic ordering of those bytes, so two keys whose prefixes
   differ compare with one unboxed int comparison; only prefix ties
   (first 62 bits at [off] equal) need byte-wise comparison. *)

let max_prefix_offset = size - 8

let prefix_at t off = Int64.to_int (Int64.shift_right_logical (String.get_int64_be t off) 2)

let common_prefix_len a b =
  let n = ref 0 in
  while !n < size && a.[!n] = b.[!n] do incr n done;
  !n

let compare_head a b len =
  let rec go i =
    if i >= len then 0
    else
      let c = Char.compare a.[i] b.[i] in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let compare_from off a b =
  let rec go i =
    if i >= size then 0
    else
      let c = Char.compare a.[i] b.[i] in
      if c <> 0 then c else go (i + 1)
  in
  go off

(* {1 Hashing}

   Only the discriminating fields (Fig. 4 layout): the volume-id tail,
   the slot path and the block number.  Keys of one volume share the
   20-byte volume prefix, and version bytes are almost always zero, so
   hashing all 64 bytes (what the polymorphic [Hashtbl.hash] does)
   wastes most of its work.  Bytes 16..47 cover the volume tail, every
   slot level and the remainder hash head; bytes 52..59 the block. *)

let hash t =
  let mix h w =
    let h = Int64.logxor h w in
    let h = Int64.mul h 0xBF58476D1CE4E5B9L in
    Int64.logxor h (Int64.shift_right_logical h 29)
  in
  let h = mix 0x2545F4914F6CDD1DL (String.get_int64_be t 16) in
  let h = mix h (String.get_int64_be t 24) in
  let h = mix h (String.get_int64_be t 32) in
  let h = mix h (String.get_int64_be t 40) in
  let h = mix h (String.get_int64_be t 52) in
  Int64.to_int h land max_int

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = String.equal
  let hash = hash
end)

let zero = String.make size '\000'
let max_key = String.make size '\255'

let succ t =
  let b = Bytes.of_string t in
  let rec carry i =
    if i < 0 then () (* wrapped: all bytes were 0xff, result is all zero *)
    else begin
      let v = Char.code (Bytes.get b i) in
      if v = 0xff then begin
        Bytes.set b i '\000';
        carry (i - 1)
      end
      else Bytes.set b i (Char.chr (v + 1))
    end
  in
  carry (size - 1);
  Bytes.unsafe_to_string b

let pred t =
  let b = Bytes.of_string t in
  let rec borrow i =
    if i < 0 then () (* wrapped: all bytes were 0, result is all 0xff *)
    else begin
      let v = Char.code (Bytes.get b i) in
      if v = 0 then begin
        Bytes.set b i '\255';
        borrow (i - 1)
      end
      else Bytes.set b i (Char.chr (v - 1))
    end
  in
  borrow (size - 1);
  Bytes.unsafe_to_string b

let in_interval k ~lo ~hi =
  let c = compare lo hi in
  if c = 0 then true
  else if c < 0 then compare lo k < 0 && compare k hi <= 0
  else compare lo k < 0 || compare k hi <= 0

let random rng =
  let b = Bytes.create size in
  D2_util.Rng.bits rng b;
  Bytes.unsafe_to_string b

let to_hex t =
  let buf = Buffer.create (2 * size) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) t;
  Buffer.contents buf

let of_hex s =
  if String.length s <> 2 * size then invalid_arg "Key.of_hex: wrong length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Key.of_hex: bad digit"
  in
  String.init size (fun i ->
      Char.chr ((digit s.[2 * i] * 16) + digit s.[(2 * i) + 1]))

let short_hex t = String.sub (to_hex t) 0 8

let pp fmt t = Format.pp_print_string fmt (short_hex t)
