(** 64-byte DHT keys.

    D2 keys (paper §4.2, Fig. 4) are 64-byte strings compared
    lexicographically; the key space is a ring, so interval tests wrap
    around the maximum key.  Node IDs live in the same space. *)

type t

val size : int
(** Always 64. *)

val of_string : string -> t
(** @raise Invalid_argument if the string is not exactly [size] bytes. *)

val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool

val max_prefix_offset : int
(** Largest valid offset for {!prefix_at}: [size - 8]. *)

val prefix_at : t -> int -> int
(** [prefix_at t off] is the top 62 bits of bytes [off .. off+7] as a
    non-negative int whose ordering agrees with the lexicographic
    ordering of those bytes.  Hot-path structures (the ring's binary
    search, the lookup cache's range map) compare precomputed prefixes
    with one unboxed int comparison and only fall back to byte-wise
    {!compare} on a tie.  [0 <= off <= max_prefix_offset]. *)

val common_prefix_len : t -> t -> int
(** Number of leading bytes on which the two keys agree (0..[size]). *)

val compare_head : t -> t -> int -> int
(** [compare_head a b len] compares only the first [len] bytes. *)

val compare_from : int -> t -> t -> int
(** [compare_from off a b] compares only bytes [off .. size-1]; equal
    to [compare a b] whenever the first [off] bytes agree. *)

val hash : t -> int
(** Hash of the discriminating bytes only — volume-id tail, slot path
    and block number (Fig. 4 fields) — instead of the whole 64-byte
    string.  Pair with {!equal} in hash tables; see {!Table}. *)

module Table : Hashtbl.S with type key = t
(** [Hashtbl.Make] instance over {!hash}/{!equal}, for key-indexed hot
    tables (block index, holder sets, buffer-cache warmth). *)

val zero : t
(** All-zero key: the smallest point of the ring. *)

val max_key : t
(** All-0xff key: the largest point of the ring. *)

val succ : t -> t
(** Next key on the ring ([max_key] wraps to [zero]). *)

val pred : t -> t
(** Previous key on the ring ([zero] wraps to [max_key]). *)

val in_interval : t -> lo:t -> hi:t -> bool
(** [in_interval k ~lo ~hi] is membership of [k] in the half-open ring
    interval [(lo, hi]].  When [lo = hi] the interval is the full ring
    (a single node owns everything).  This is exactly the "successor
    owns the key" rule of consistent hashing. *)

val random : D2_util.Rng.t -> t
(** Uniformly random key — models a content-hash key in the
    traditional configuration. *)

val of_hex : string -> t
(** @raise Invalid_argument on malformed input. *)

val to_hex : t -> string

val short_hex : t -> string
(** First 8 hex digits, for logs. *)

val pp : Format.formatter -> t -> unit
