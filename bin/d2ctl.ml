(* d2ctl: command-line driver for the D2 reproduction.

   - `d2ctl list`                 catalogue of reproducible experiments
   - `d2ctl run fig9 table3 ...`  regenerate specific tables/figures
   - `d2ctl run --all`            the whole evaluation
   - `d2ctl workload harvard`     synthetic-workload statistics
   - `d2ctl demo`                 end-to-end D2-FS walkthrough on a
                                  simulated cluster *)

open Cmdliner

module Config = D2_experiments.Config
module Registry = D2_experiments.Registry

let scale_arg =
  let parse s =
    match s with
    | "quick" -> Ok Config.Quick
    | "paper" -> Ok Config.Paper
    | _ -> Error (`Msg "scale must be `quick' or `paper'")
  in
  let print fmt s = Format.pp_print_string fmt (Config.scale_name s) in
  Arg.conv (parse, print)

let scale_term =
  Arg.(
    value
    & opt scale_arg (Config.of_env ())
      ~vopt:Config.Paper
    & info [ "s"; "scale" ] ~docv:"SCALE"
        ~doc:"Experiment scale: $(b,quick) or $(b,paper) (default from D2_SCALE).")

let jobs_term =
  Arg.(
    value
    & opt int (D2_util.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Worker domains running experiments concurrently (default from \
           D2_JOBS, else one less than the recommended domain count).  Output \
           is printed in registry order and is byte-identical across job \
           counts.")

let setup_log verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_term =
  let flag =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log balancer/store events.")
  in
  Term.(const setup_log $ flag)

(* {1 list} *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Registry.entry) -> Printf.printf "%-20s %s\n" e.Registry.id e.Registry.title)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List reproducible experiments")
    Term.(const run $ const ())

(* {1 run} *)

let run_cmd =
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT") in
  let all = Arg.(value & flag & info [ "all" ] ~doc:"Run every experiment.") in
  let run scale jobs all ids () =
    let entries =
      if all || ids = [] then Registry.all
      else
        List.map
          (fun id ->
            match Registry.find id with
            | Some e -> e
            | None ->
                Printf.eprintf "error: unknown experiment %S (try `d2ctl list')\n" id;
                exit 1)
          ids
    in
    Printf.printf "scale: %s (jobs: %d)\n\n%!" (Config.scale_name scale) jobs;
    List.iter Registry.print_outcome (Registry.run_entries ~jobs scale entries)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Regenerate the paper's tables and figures")
    Term.(const run $ scale_term $ jobs_term $ all $ ids $ verbose_term)

(* {1 workload} *)

let workload_cmd =
  let wname =
    Arg.(
      required
      & pos 0 (some (enum [ ("harvard", `Harvard); ("hp", `Hp); ("web", `Web); ("webcache", `Webcache) ])) None
      & info [] ~docv:"WORKLOAD")
  in
  let export =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"FILE" ~doc:"Also write the trace to $(docv) (tab-separated; reload with Serialize.load_file).")
  in
  let run scale which export =
    let trace =
      match which with
      | `Harvard -> D2_experiments.Data.harvard scale
      | `Hp -> D2_experiments.Data.hp scale
      | `Web -> D2_experiments.Data.web scale
      | `Webcache -> D2_experiments.Data.webcache scale
    in
    (match export with
    | Some file ->
        D2_trace.Serialize.save_file trace file;
        Printf.printf "exported to %s\n" file
    | None -> ());
    let module Op = D2_trace.Op in
    let module Task = D2_trace.Task in
    Printf.printf "workload %s: %.1f days, %d users, %d ops, %d initial files (%.1f MB)\n"
      trace.Op.name
      (trace.Op.duration /. 86400.0)
      trace.Op.users
      (Array.length trace.Op.ops)
      (Array.length trace.Op.initial_files)
      (float_of_int (Op.total_initial_bytes trace) /. 1.0e6);
    Printf.printf "  reads=%d writes=%d creates=%d deletes=%d\n"
      (Op.count_kind trace Op.Read) (Op.count_kind trace Op.Write)
      (Op.count_kind trace Op.Create) (Op.count_kind trace Op.Delete);
    List.iter
      (fun inter ->
        let tasks = Task.segment trace ~inter () in
        Printf.printf "  inter=%4.0fs: %6d tasks, %.0f blocks/task, %.0f files/task\n"
          inter (Array.length tasks)
          (Task.mean_over tasks Task.distinct_blocks)
          (Task.mean_over tasks Task.distinct_files))
      [ 1.0; 5.0; 15.0; 60.0 ]
  in
  Cmd.v (Cmd.info "workload" ~doc:"Describe a synthetic workload")
    Term.(const run $ scale_term $ wname $ export)

(* {1 demo} *)

let demo_cmd =
  let run () =
    let module Key = D2_keyspace.Key in
    let module Cluster = D2_store.Cluster in
    let module Engine = D2_simnet.Engine in
    let module Fs = D2_fs.Fs in
    let engine = Engine.create () in
    let rng = D2_util.Rng.create 2007 in
    let ids = Array.init 32 (fun _ -> Key.random rng) in
    let cluster = Cluster.create ~engine ~config:Cluster.default_config ~ids in
    let fs = Fs.create ~cluster ~volume:"demo" ~mode:Fs.D2 () in
    print_endline "Creating /projects/d2/{README.md,src/main.ml,src/ring.ml} ...";
    Fs.write_file fs ~path:"/projects/d2/README.md" ~data:"# D2 demo volume\n";
    Fs.write_file fs ~path:"/projects/d2/src/main.ml" ~data:(String.make 20_000 'a');
    Fs.write_file fs ~path:"/projects/d2/src/ring.ml" ~data:(String.make 12_000 'b');
    Fs.flush fs;
    Engine.run engine;
    List.iter
      (fun path ->
        let keys = Fs.file_block_keys fs path in
        let holders =
          List.sort_uniq compare
            (List.concat_map (fun k -> Cluster.physical_holders cluster ~key:k) keys)
        in
        Printf.printf "%-28s %2d blocks, replicas on %d nodes, first key %s...\n" path
          (List.length keys) (List.length holders)
          (Key.short_hex (List.hd keys)))
      [ "/projects/d2/README.md"; "/projects/d2/src/main.ml"; "/projects/d2/src/ring.ml" ];
    Printf.printf "Reading back main.ml: %d bytes\n"
      (String.length (Option.get (Fs.read_file fs "/projects/d2/src/main.ml")));
    print_endline "Renaming src -> lib is O(1) in data movement (keys keep their home):";
    Fs.rename fs ~src:"/projects/d2/src/main.ml" ~dst:"/projects/d2/main_moved.ml";
    Printf.printf "  read after rename: %d bytes\n"
      (String.length (Option.get (Fs.read_file fs "/projects/d2/main_moved.ml")));
    Printf.printf "Client performed %d block fetches in total.\n" (Fs.blocks_fetched fs)
  in
  Cmd.v (Cmd.info "demo" ~doc:"End-to-end D2-FS walkthrough on a simulated cluster")
    Term.(const run $ const ())

(* {1 fsck} *)

let fsck_cmd =
  let run () =
    let module Key = D2_keyspace.Key in
    let module Cluster = D2_store.Cluster in
    let module Engine = D2_simnet.Engine in
    let module Fs = D2_fs.Fs in
    (* Build a demo volume, deliberately corrupt one block, and show
       the integrity walk finding it. *)
    let engine = Engine.create () in
    let rng = D2_util.Rng.create 99 in
    let ids = Array.init 24 (fun _ -> Key.random rng) in
    let cluster = Cluster.create ~engine ~config:Cluster.default_config ~ids in
    let fs = Fs.create ~cluster ~volume:"fsck-demo" ~mode:Fs.D2 () in
    Fs.write_file fs ~path:"/docs/report.txt" ~data:(String.make 25_000 'r');
    Fs.write_file fs ~path:"/docs/notes.txt" ~data:"short";
    Fs.write_file fs ~path:"/src/main.ml" ~data:(String.make 12_000 'm');
    Fs.flush fs;
    let show label (r : Fs.check_report) =
      Printf.printf "%s: %d dirs, %d files, %d bytes verified, %d problem(s)\n" label
        r.Fs.dirs r.Fs.files r.Fs.bytes (List.length r.Fs.problems);
      List.iter (fun p -> Printf.printf "  ! %s\n" p) r.Fs.problems
    in
    show "clean volume" (Fs.check_volume fs);
    (* Corrupt a data block of report.txt in place. *)
    let keys = Fs.file_block_keys fs "/docs/report.txt" in
    Cluster.put cluster ~key:(List.nth keys 1) ~size:4
      ~data:(D2_fs.Layout.encode (D2_fs.Layout.Data "oops")) ();
    show "after corrupting one block" (Fs.check_volume fs)
  in
  Cmd.v
    (Cmd.info "fsck" ~doc:"Integrity-walk demo: verify a volume, then detect injected corruption")
    Term.(const run $ const ())

let () =
  D2_util.Gc_tune.apply ();
  let info =
    Cmd.info "d2ctl" ~version:"1.0.0"
      ~doc:"Defragmented DHT file system (D2) — reproduction toolkit"
  in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; workload_cmd; demo_cmd; fsck_cmd ]))
