(* d2fleet: step a fleet of simulated D2 clients (a million by
   default) against a simulated cluster in virtual time, and report
   cache effectiveness and load concentration.

   The deterministic report — per-class hit/miss/stale counters, the
   hit-rate-vs-cache-size curve (one run yields every size up to
   [--ways] via LRU stack distances), and the per-owner load
   histogram — goes to stdout; wall-clock throughput goes to stderr so
   equal seeds diff clean.  [--min-ops-s] turns simulated throughput
   into an exit-code floor for CI. *)

open Cmdliner
module Fleet = D2_fleet.Fleet
module Scenario = D2_fleet.Scenario

let run scenario clients shards nodes ways files blocks burst duration seed jobs
    think zipf_s flash_at crowd_every crowd_think flash_files day amplitude
    churn_per_day drift min_ops_s =
  match Scenario.kind_of_string scenario with
  | None ->
      Printf.eprintf
        "d2fleet: unknown scenario %S (zipf_storm | flash_crowd | diurnal)\n"
        scenario;
      2
  | Some kind ->
      let d = Scenario.default kind in
      let v o dflt = Option.value o ~default:dflt in
      let sc =
        {
          d with
          Scenario.think = v think d.Scenario.think;
          zipf_s = v zipf_s d.Scenario.zipf_s;
          flash_at = v flash_at d.Scenario.flash_at;
          crowd_every = v crowd_every d.Scenario.crowd_every;
          crowd_think = v crowd_think d.Scenario.crowd_think;
          flash_files = v flash_files d.Scenario.flash_files;
          day = v day d.Scenario.day;
          amplitude = v amplitude d.Scenario.amplitude;
          churn_per_day = v churn_per_day d.Scenario.churn_per_day;
          drift;
        }
      in
      let cfg =
        {
          (Fleet.default_config sc) with
          Fleet.clients;
          shards;
          nodes;
          ways;
          files;
          blocks;
          burst;
          duration;
          seed;
          jobs;
        }
      in
      let t0 = Unix.gettimeofday () in
      (match Fleet.run cfg with
      | exception Invalid_argument m ->
          Printf.eprintf "d2fleet: %s\n" m;
          2
      | r ->
          let dt = Unix.gettimeofday () -. t0 in
          Format.printf "%a@?" Fleet.pp_report (cfg, r);
          let rate = if dt > 0.0 then float_of_int r.Fleet.ops /. dt else 0.0 in
          Printf.eprintf "wall %.2fs  %.0f simulated ops/s\n%!" dt rate;
          if rate < min_ops_s then begin
            Printf.eprintf "d2fleet: throughput below --min-ops-s %.0f\n"
              min_ops_s;
            1
          end
          else 0)

let dflt = Fleet.default_config (Scenario.default Scenario.Zipf_storm)

let scenario =
  let env = Cmd.Env.info "D2_FLEET_SCENARIO" in
  Arg.(
    value
    & opt string "zipf_storm"
    & info [ "s"; "scenario" ] ~env ~docv:"NAME"
        ~doc:"Workload: zipf_storm, flash_crowd or diurnal.")

let clients =
  let env = Cmd.Env.info "D2_FLEET_CLIENTS" in
  Arg.(
    value
    & opt int dflt.Fleet.clients
    & info [ "n"; "clients" ] ~env ~docv:"N" ~doc:"Simulated client count.")

let shards =
  Arg.(
    value
    & opt int dflt.Fleet.shards
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Fixed shard count; results depend on it, never on $(b,--jobs).")

let nodes =
  Arg.(value & opt int dflt.Fleet.nodes & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")

let ways =
  Arg.(
    value
    & opt int dflt.Fleet.ways
    & info [ "ways" ] ~docv:"N"
        ~doc:
          "Per-client cache slots; also the upper bound of the reported \
           hit-rate-vs-size sweep (one run covers every size up to this).")

let files =
  Arg.(value & opt int dflt.Fleet.files & info [ "files" ] ~docv:"N" ~doc:"Files on the volume.")

let blocks =
  Arg.(value & opt int dflt.Fleet.blocks & info [ "blocks" ] ~docv:"N" ~doc:"Blocks per file.")

let burst =
  Arg.(
    value
    & opt int dflt.Fleet.burst
    & info [ "burst" ] ~docv:"N"
        ~doc:"Sequential blocks read per client wake-up.")

let duration =
  Arg.(
    value
    & opt float dflt.Fleet.duration
    & info [ "d"; "duration" ] ~docv:"SECONDS" ~doc:"Virtual run length.")

let seed =
  Arg.(value & opt int dflt.Fleet.seed & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")

let jobs =
  Arg.(
    value
    & opt int dflt.Fleet.jobs
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains (default $(b,D2_JOBS)); wall-clock only.")

let fopt names doc =
  Arg.(value & opt (some float) None & info names ~docv:"X" ~doc)

let iopt names doc =
  Arg.(value & opt (some int) None & info names ~docv:"N" ~doc)

let think = fopt [ "think" ] "Mean client think time (virtual seconds)."
let zipf_s = fopt [ "zipf-s" ] "Popularity exponent over files."
let flash_at = fopt [ "flash-at" ] "Crowd wake-up instant (flash_crowd)."
let crowd_every = iopt [ "crowd-every" ] "Every k-th client is crowd-class."
let crowd_think = fopt [ "crowd-think" ] "Crowd think time after the flash."
let flash_files = iopt [ "flash-files" ] "Crowd draws from the hottest k files."
let day = fopt [ "day" ] "Diurnal period (virtual seconds)."
let amplitude = fopt [ "amplitude" ] "Diurnal rate swing, in [0, 1)."

let churn_per_day =
  fopt [ "churn-per-day" ] "Node churn events per node per day (diurnal)."

let drift =
  Arg.(
    value
    & flag
    & info [ "drift" ]
        ~doc:"Rotate the popularity ranking at each churn event.")

let min_ops_s =
  Arg.(
    value
    & opt float 0.0
    & info [ "min-ops-s" ] ~docv:"RATE"
        ~doc:"Exit non-zero below this simulated ops/s (CI gate).")

let cmd =
  let doc = "simulate a fleet of D2 clients at hardware speed" in
  Cmd.v
    (Cmd.info "d2fleet" ~doc)
    Term.(
      const run $ scenario $ clients $ shards $ nodes $ ways $ files $ blocks
      $ burst $ duration $ seed $ jobs $ think $ zipf_s $ flash_at $ crowd_every
      $ crowd_think $ flash_files $ day $ amplitude $ churn_per_day $ drift
      $ min_ops_s)

let () = exit (Cmd.eval' cmd)
