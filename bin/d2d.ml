(* d2d: one D2 storage node over real TCP.

   A fixed-size loopback deployment: node [--node] of [--nodes] binds
   127.0.0.1:port_base+node (D2_NET_PORT_BASE or --port-base), joins
   the peers that are already up, and serves lookup/get/put/remove
   until SIGINT/SIGTERM or --duration elapses.

   With [--domains k] (or D2_NET_DOMAINS), k domains serve the same
   logical node: every domain binds its own SO_REUSEPORT listener on
   the node's address and runs its own poll loop, the kernel spreading
   inbound connections across them.  Ring/router state is shared under
   the node's membership lock and the shard is lock-partitioned, so
   the get/put data path scales across domains. *)

open Cmdliner
module T = D2_net.Transport_unix
module Node = D2_net.Node.Make (D2_net.Transport_unix)
module Bootstrap = D2_net.Bootstrap

let stop_flag = Atomic.make false

let default_domains () =
  match Sys.getenv_opt "D2_NET_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | _ ->
          prerr_endline "d2d: ignoring malformed D2_NET_DOMAINS";
          1)
  | None -> 1

let default_policy () =
  match Sys.getenv_opt "D2_ROUTE_POLICY" with
  | Some s -> (
      match D2_dht.Router.policy_of_string s with
      | Some _ -> s
      | None ->
          prerr_endline "d2d: ignoring malformed D2_ROUTE_POLICY";
          "fingers")
  | None -> "fingers"

let run node nodes port_base replicas probe_interval rpc_timeout duration
    domains policy_str =
  let policy =
    match D2_dht.Router.policy_of_string policy_str with
    | Some p -> p
    | None ->
        Printf.eprintf "d2d: unknown --policy %s\n" policy_str;
        exit 2
  in
  if node < 0 || node >= nodes then (
    Printf.eprintf "d2d: --node must be in [0, %d)\n" nodes;
    exit 2);
  if domains < 1 then (
    Printf.eprintf "d2d: --domains must be >= 1\n";
    exit 2);
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle (fun _ -> Atomic.set stop_flag true));
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> Atomic.set stop_flag true));
  let addr_of = T.loopback ~port_base ~n:nodes in
  let reuseport = domains > 1 in
  let ep = T.create ~node ~addr_of ~reuseport () in
  let config = { D2_net.Node.replicas; probe_interval; rpc_timeout } in
  let n =
    Node.create ep ~policy ~config ~id:(Bootstrap.node_id node)
      ~peers:(Bootstrap.peers nodes) ()
  in
  Node.serve n;
  Printf.printf
    "d2d: node %d/%d listening on 127.0.0.1:%d (replicas=%d, domains=%d, \
     policy=%s)\n%!"
    node nodes (port_base + node) replicas domains
    (D2_dht.Router.policy_name policy);
  let deadline =
    if duration > 0.0 then Some (Unix.gettimeofday () +. duration) else None
  in
  let expired () =
    match deadline with
    | Some t -> Unix.gettimeofday () >= t
    | None -> false
  in
  let served = Atomic.make 0 in
  (* Worker domains: each owns one SO_REUSEPORT endpoint and a sibling
     view of the node, and polls only its own sockets. *)
  let workers =
    if domains <= 1 then []
    else begin
      let pool = D2_util.Pool.create ~jobs:(domains - 1) () in
      let ps =
        List.init (domains - 1) (fun _ ->
            D2_util.Pool.submit pool (fun () ->
                let wep = T.create ~node ~addr_of ~reuseport:true () in
                let s = Node.sibling n wep in
                while not (Atomic.get stop_flag) do
                  T.poll wep ~timeout:0.05
                done;
                T.shutdown wep;
                Atomic.fetch_and_add served (Node.requests_served s) |> ignore))
      in
      [ (pool, ps) ]
    end
  in
  while (not (Atomic.get stop_flag)) && not (expired ()) do
    T.poll ep ~timeout:0.05
  done;
  Atomic.set stop_flag true;
  List.iter
    (fun (pool, ps) ->
      List.iter D2_util.Pool.await ps;
      D2_util.Pool.shutdown pool)
    workers;
  Node.stop n;
  T.shutdown ep;
  Printf.printf "d2d: node %d served %d requests, %d blocks (%d bytes) stored\n%!"
    node
    (Node.requests_served n + Atomic.get served)
    (D2_net.Shard.count (Node.shard n))
    (D2_net.Shard.stored_bytes (Node.shard n))

let node_term =
  Arg.(
    required
    & opt (some int) None
    & info [ "node" ] ~docv:"N" ~doc:"This node's index in the cluster.")

let nodes_term =
  Arg.(
    value & opt int 3
    & info [ "nodes" ] ~docv:"M" ~doc:"Cluster size (all processes must agree).")

let port_base_term =
  Arg.(
    value
    & opt int (T.default_port_base ())
    & info [ "port-base" ] ~docv:"PORT"
        ~doc:"Node $(i,i) listens on 127.0.0.1:PORT+$(i,i) (default from \
              D2_NET_PORT_BASE, else 7000).")

let replicas_term =
  Arg.(
    value & opt int 3
    & info [ "replicas" ] ~docv:"R" ~doc:"Copies per block, owner included.")

let probe_term =
  Arg.(
    value & opt float 0.5
    & info [ "probe-interval" ] ~docv:"SECS" ~doc:"Liveness probe period.")

let timeout_term =
  Arg.(
    value & opt float 0.25
    & info [ "rpc-timeout" ] ~docv:"SECS" ~doc:"Per-RPC reply deadline.")

let duration_term =
  Arg.(
    value & opt float 0.0
    & info [ "duration" ] ~docv:"SECS"
        ~doc:"Exit cleanly after SECS seconds (0 = run until a signal).")

let domains_term =
  Arg.(
    value
    & opt int (default_domains ())
    & info [ "domains" ] ~docv:"K"
        ~doc:"Serve this node with K domains, each on its own \
              SO_REUSEPORT listener (default from D2_NET_DOMAINS, else \
              1).")

let policy_term =
  Arg.(
    value
    & opt string (default_policy ())
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:"Routing-link policy: fingers, harmonic-$(i,k), chord, \
              kademlia-$(i,b), or successor-only (default from \
              D2_ROUTE_POLICY, else fingers).  All nodes of a cluster \
              should agree.")

let cmd =
  let doc = "run one D2 storage node over TCP" in
  Cmd.v
    (Cmd.info "d2d" ~doc)
    Term.(
      const run $ node_term $ nodes_term $ port_base_term $ replicas_term
      $ probe_term $ timeout_term $ duration_term $ domains_term
      $ policy_term)

let () = exit (Cmd.eval cmd)
