(* d2d: one D2 storage node over real TCP.

   A fixed-size loopback deployment: node [--node] of [--nodes] binds
   127.0.0.1:port_base+node (D2_NET_PORT_BASE or --port-base), joins
   the peers that are already up, and serves lookup/get/put/remove
   until SIGINT/SIGTERM or --duration elapses.

   With [--domains k] (or D2_NET_DOMAINS), k domains serve the same
   logical node: every domain binds its own SO_REUSEPORT listener on
   the node's address and runs its own poll loop, the kernel spreading
   inbound connections across them.  Ring/router state is shared under
   the node's membership lock and the shard is lock-partitioned, so
   the get/put data path scales across domains. *)

open Cmdliner
module T = D2_net.Transport_unix
module Node = D2_net.Node.Make (D2_net.Transport_unix)
module Bootstrap = D2_net.Bootstrap

let stop_flag = Atomic.make false

let default_domains () =
  match Sys.getenv_opt "D2_NET_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | _ ->
          prerr_endline "d2d: ignoring malformed D2_NET_DOMAINS";
          1)
  | None -> 1

let default_policy () =
  match Sys.getenv_opt "D2_ROUTE_POLICY" with
  | Some s -> (
      match D2_dht.Router.policy_of_string s with
      | Some _ -> s
      | None ->
          prerr_endline "d2d: ignoring malformed D2_ROUTE_POLICY";
          "fingers")
  | None -> "fingers"

let default_store () =
  match Sys.getenv_opt "D2_STORE" with
  | Some ("mem" | "disk") -> Sys.getenv "D2_STORE"
  | Some _ ->
      prerr_endline "d2d: ignoring malformed D2_STORE";
      "mem"
  | None -> "mem"

let default_store_dir () =
  match Sys.getenv_opt "D2_STORE_DIR" with
  | Some d when d <> "" -> d
  | _ -> "/tmp/d2-store"

let default_fsync () =
  match Sys.getenv_opt "D2_FSYNC_BATCH" with
  | Some s -> (
      match D2_segstore.Store.fsync_policy_of_string s with
      | Some _ -> s
      | None ->
          prerr_endline "d2d: ignoring malformed D2_FSYNC_BATCH";
          "batch")
  | None -> "batch"

let env_int name fallback =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v > 0 -> v
      | _ ->
          Printf.eprintf "d2d: ignoring malformed %s\n" name;
          fallback)
  | None -> fallback

let env_float name fallback =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some v when v > 0.0 && v <= 1.0 -> v
      | _ ->
          Printf.eprintf "d2d: ignoring malformed %s\n" name;
          fallback)
  | None -> fallback

let run node nodes port_base replicas probe_interval rpc_timeout
    repair_interval duration domains policy_str store_kind store_dir fsync_str
    segment_mb compact_live =
  let policy =
    match D2_dht.Router.policy_of_string policy_str with
    | Some p -> p
    | None ->
        Printf.eprintf "d2d: unknown --policy %s\n" policy_str;
        exit 2
  in
  let fsync =
    match D2_segstore.Store.fsync_policy_of_string fsync_str with
    | Some p -> p
    | None ->
        Printf.eprintf "d2d: unknown --fsync %s\n" fsync_str;
        exit 2
  in
  (if store_kind <> "mem" && store_kind <> "disk" then begin
     Printf.eprintf "d2d: unknown --store %s\n" store_kind;
     exit 2
   end);
  if node < 0 || node >= nodes then (
    Printf.eprintf "d2d: --node must be in [0, %d)\n" nodes;
    exit 2);
  if domains < 1 then (
    Printf.eprintf "d2d: --domains must be >= 1\n";
    exit 2);
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle (fun _ -> Atomic.set stop_flag true));
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> Atomic.set stop_flag true));
  let addr_of = T.loopback ~port_base ~n:nodes in
  let reuseport = domains > 1 in
  let ep = T.create ~node ~addr_of ~reuseport () in
  let config =
    { D2_net.Node.replicas; probe_interval; rpc_timeout; repair_interval }
  in
  (* Each node keeps its segments under <store-dir>/node-<i>, so every
     daemon of a loopback cluster can share one --store-dir and a
     restarted node finds its own data again. *)
  let seg_store =
    if store_kind <> "disk" then None
    else begin
      let dir = Filename.concat store_dir (Printf.sprintf "node-%d" node) in
      let cfg =
        {
          D2_segstore.Store.default_config with
          segment_bytes = segment_mb lsl 20;
          fsync;
          compact_live;
        }
      in
      let st = D2_segstore.Store.create ~dir ~config:cfg () in
      (match D2_segstore.Store.recovery st with
      | Some r when r.D2_segstore.Store.r_segments > 0 ->
          let mb = float_of_int r.D2_segstore.Store.r_replayed_bytes /. 1048576. in
          Printf.printf
            "d2d: node %d recovered %d blocks (ckpt %d + %d replayed, %.2f \
             MB, %d B truncated) in %.3f s (%.1f MB/s)\n%!"
            node
            (D2_segstore.Store.count st)
            r.D2_segstore.Store.r_checkpoint_blocks
            r.D2_segstore.Store.r_replayed_records mb
            r.D2_segstore.Store.r_truncated_bytes
            r.D2_segstore.Store.r_wall_s
            (if r.D2_segstore.Store.r_wall_s > 0. then
               mb /. r.D2_segstore.Store.r_wall_s
             else 0.)
      | _ -> ());
      Some st
    end
  in
  let store =
    match seg_store with
    | Some st -> D2_net.Blockstore.disk st
    | None -> D2_net.Blockstore.mem_store ()
  in
  (* When a background group commit lands, poke every domain's poll
     loop: the acks the commit covers go out now, not at the next
     timer tick.  Worker endpoints enroll themselves once created. *)
  let wakers = ref [ ep ] in
  let wakers_mu = Mutex.create () in
  (match seg_store with
  | Some st ->
      D2_segstore.Store.on_durable st (fun () ->
          Mutex.lock wakers_mu;
          let eps = !wakers in
          Mutex.unlock wakers_mu;
          List.iter T.wake eps)
  | None -> ());
  let n =
    Node.create ep ~policy ~store ~config ~id:(Bootstrap.node_id node)
      ~peers:(Bootstrap.peers nodes) ()
  in
  Node.serve n;
  Printf.printf
    "d2d: node %d/%d listening on 127.0.0.1:%d (replicas=%d, domains=%d, \
     policy=%s)\n%!"
    node nodes (port_base + node) replicas domains
    (D2_dht.Router.policy_name policy);
  let deadline =
    if duration > 0.0 then Some (Unix.gettimeofday () +. duration) else None
  in
  let expired () =
    match deadline with
    | Some t -> Unix.gettimeofday () >= t
    | None -> false
  in
  let served = Atomic.make 0 in
  (* Worker domains: each owns one SO_REUSEPORT endpoint and a sibling
     view of the node, and polls only its own sockets. *)
  let workers =
    if domains <= 1 then []
    else begin
      let pool = D2_util.Pool.create ~jobs:(domains - 1) () in
      let ps =
        List.init (domains - 1) (fun _ ->
            D2_util.Pool.submit pool (fun () ->
                let wep = T.create ~node ~addr_of ~reuseport:true () in
                Mutex.lock wakers_mu;
                wakers := wep :: !wakers;
                Mutex.unlock wakers_mu;
                let s = Node.sibling n wep in
                while not (Atomic.get stop_flag) do
                  T.poll wep ~timeout:0.05;
                  Node.flush_store s
                done;
                Mutex.lock wakers_mu;
                wakers := List.filter (fun e -> e != wep) !wakers;
                Mutex.unlock wakers_mu;
                T.shutdown wep;
                Atomic.fetch_and_add served (Node.requests_served s) |> ignore))
      in
      [ (pool, ps) ]
    end
  in
  while (not (Atomic.get stop_flag)) && not (expired ()) do
    T.poll ep ~timeout:0.05;
    Node.flush_store n
  done;
  Atomic.set stop_flag true;
  List.iter
    (fun (pool, ps) ->
      List.iter D2_util.Pool.await ps;
      D2_util.Pool.shutdown pool)
    workers;
  Node.stop n;
  T.shutdown ep;
  (match seg_store with Some st -> D2_segstore.Store.close st | None -> ());
  Printf.printf "d2d: node %d served %d requests, %d blocks (%d bytes) stored\n%!"
    node
    (Node.requests_served n + Atomic.get served)
    (D2_net.Blockstore.count (Node.store n))
    (D2_net.Blockstore.stored_bytes (Node.store n))

let node_term =
  Arg.(
    required
    & opt (some int) None
    & info [ "node" ] ~docv:"N" ~doc:"This node's index in the cluster.")

let nodes_term =
  Arg.(
    value & opt int 3
    & info [ "nodes" ] ~docv:"M" ~doc:"Cluster size (all processes must agree).")

let port_base_term =
  Arg.(
    value
    & opt int (T.default_port_base ())
    & info [ "port-base" ] ~docv:"PORT"
        ~doc:"Node $(i,i) listens on 127.0.0.1:PORT+$(i,i) (default from \
              D2_NET_PORT_BASE, else 7000).")

let replicas_term =
  Arg.(
    value & opt int 3
    & info [ "replicas" ] ~docv:"R" ~doc:"Copies per block, owner included.")

let probe_term =
  Arg.(
    value & opt float 0.5
    & info [ "probe-interval" ] ~docv:"SECS" ~doc:"Liveness probe period.")

let timeout_term =
  Arg.(
    value & opt float 0.25
    & info [ "rpc-timeout" ] ~docv:"SECS" ~doc:"Per-RPC reply deadline.")

let repair_term =
  Arg.(
    value
    & opt float (env_float "D2_REPAIR_INTERVAL" 1.0)
    & info [ "repair-interval" ] ~docv:"SECS"
        ~doc:"Anti-entropy period: every SECS this node reconciles its \
              primary range with one successor (digest exchange, then \
              block transfers), rotating through the replica set.  0 \
              disables repair (default from D2_REPAIR_INTERVAL, else 1).")

let duration_term =
  Arg.(
    value & opt float 0.0
    & info [ "duration" ] ~docv:"SECS"
        ~doc:"Exit cleanly after SECS seconds (0 = run until a signal).")

let domains_term =
  Arg.(
    value
    & opt int (default_domains ())
    & info [ "domains" ] ~docv:"K"
        ~doc:"Serve this node with K domains, each on its own \
              SO_REUSEPORT listener (default from D2_NET_DOMAINS, else \
              1).")

let policy_term =
  Arg.(
    value
    & opt string (default_policy ())
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:"Routing-link policy: fingers, harmonic-$(i,k), chord, \
              kademlia-$(i,b), or successor-only (default from \
              D2_ROUTE_POLICY, else fingers).  All nodes of a cluster \
              should agree.")

let store_term =
  Arg.(
    value
    & opt string (default_store ())
    & info [ "store" ] ~docv:"KIND"
        ~doc:"Block backend: $(b,mem) (in-RAM shard) or $(b,disk) (durable \
              segment log with group commit; default from D2_STORE, else \
              mem).")

let store_dir_term =
  Arg.(
    value
    & opt string (default_store_dir ())
    & info [ "store-dir" ] ~docv:"DIR"
        ~doc:"Cluster store root for --store disk; this node's segments \
              live in DIR/node-$(i,N) (default from D2_STORE_DIR, else \
              /tmp/d2-store).")

let fsync_term =
  Arg.(
    value
    & opt string (default_fsync ())
    & info [ "fsync" ] ~docv:"POLICY"
        ~doc:"Durability policy for --store disk: $(b,batch) (one \
              fdatasync per group-commit window), $(b,always) (sync every \
              put — the honest lower bound), or $(b,never) (kernel \
              writeback; default from D2_FSYNC_BATCH, else batch).")

let segment_mb_term =
  Arg.(
    value
    & opt int (env_int "D2_SEGMENT_MB" 64)
    & info [ "segment-mb" ] ~docv:"MB"
        ~doc:"Segment rotation threshold in MiB (default from \
              D2_SEGMENT_MB, else 64).")

let compact_live_term =
  Arg.(
    value
    & opt float (env_float "D2_COMPACT_LIVE" 0.5)
    & info [ "compact-live" ] ~docv:"FRAC"
        ~doc:"Sealed segments below this live-byte fraction are rewritten \
              and deleted (default from D2_COMPACT_LIVE, else 0.5).")

let cmd =
  let doc = "run one D2 storage node over TCP" in
  Cmd.v
    (Cmd.info "d2d" ~doc)
    Term.(
      const run $ node_term $ nodes_term $ port_base_term $ replicas_term
      $ probe_term $ timeout_term $ repair_term $ duration_term $ domains_term
      $ policy_term $ store_term $ store_dir_term $ fsync_term
      $ segment_mb_term $ compact_live_term)

let () = exit (Cmd.eval cmd)
