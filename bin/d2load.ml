(* d2load: replay a synthetic Harvard-trace segment against a live
   d2d cluster and report throughput and latency percentiles.

   Ops map onto the block protocol directly: Create/Write put the
   block, Read gets it back and verifies the payload (a block the
   trace reads before any write is first seeded with a put), Delete
   removes the file's first block.  Every get is checked against what
   this process stored, so a non-zero exit means real data loss, not
   just noise. *)

open Cmdliner
module T = D2_net.Transport_unix
module Client = D2_net.Client.Make (D2_net.Transport_unix)
module Bootstrap = D2_net.Bootstrap
module Key = D2_keyspace.Key
module Rng = D2_util.Rng
module Stats = D2_util.Stats
module Op = D2_trace.Op
module Harvard = D2_trace.Harvard
module Keymap = D2_trace.Keymap

let payload_of key bytes =
  let n = max 1 (min bytes D2_net.Wire.max_payload) in
  let tag = Key.to_string key in
  String.init n (fun i -> tag.[i mod String.length tag])

let run nodes port_base replicas duration users target_mb seed rpc_timeout =
  let ep =
    T.create
      ~node:(Bootstrap.client_handle 0)
      ~addr_of:(T.loopback ~port_base ~n:nodes)
      ~listen:false ()
  in
  let client =
    Client.create ep ~replicas ~rpc_timeout
      ~seeds:(List.init nodes Fun.id)
      ()
  in
  let params =
    {
      Harvard.default_params with
      users;
      days = 1.0;
      target_bytes = target_mb * 1024 * 1024;
    }
  in
  let trace = Harvard.generate ~rng:(Rng.create seed) ~params () in
  let keymap = Keymap.create Keymap.D2 ~volume:"/d2load" in
  let stored : (Key.t, string) Hashtbl.t = Hashtbl.create 4096 in
  let lat = ref [] and ops = ref 0 and failed = ref 0 and verify_errors = ref 0 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    lat := (Unix.gettimeofday () -. t0) :: !lat;
    incr ops;
    r
  in
  let put key data =
    match timed (fun () -> Client.put client ~key ~data) with
    | `Ok _ -> Hashtbl.replace stored key data
    | `Failed -> incr failed
  in
  let do_op (op : Op.op) =
    let key = Keymap.key_of_op keymap op in
    match op.Op.kind with
    | Op.Write | Op.Create -> put key (payload_of key op.Op.bytes)
    | Op.Read -> (
        match Hashtbl.find_opt stored key with
        | None -> put key (payload_of key op.Op.bytes)
        | Some expect -> (
            match timed (fun () -> Client.get client ~key) with
            | `Found data -> if not (String.equal data expect) then incr verify_errors
            | `Missing -> incr verify_errors
            | `Failed -> incr failed))
    | Op.Delete -> (
        if Hashtbl.mem stored key then
          match timed (fun () -> Client.remove client ~key) with
          | `Ok _ -> Hashtbl.remove stored key
          | `Failed -> incr failed)
  in
  let n_ops = Array.length trace.Op.ops in
  if n_ops = 0 then (
    Printf.eprintf "d2load: empty trace\n";
    exit 2);
  let t_start = Unix.gettimeofday () in
  let i = ref 0 in
  while Unix.gettimeofday () -. t_start < duration do
    do_op trace.Op.ops.(!i mod n_ops);
    incr i
  done;
  let elapsed = Unix.gettimeofday () -. t_start in
  T.shutdown ep;
  let lats = Array.of_list !lat in
  Array.sort compare lats;
  let ms p = 1000.0 *. Stats.percentile lats p in
  let cache = Client.cache client in
  Printf.printf "d2load: %d ops in %.2f s (%.0f ops/s) against %d nodes\n" !ops
    elapsed
    (float_of_int !ops /. elapsed)
    nodes;
  Printf.printf "  latency ms: p50=%.2f p95=%.2f p99=%.2f max=%.2f\n" (ms 50.0)
    (ms 95.0) (ms 99.0)
    (1000.0 *. if Array.length lats = 0 then 0.0 else lats.(Array.length lats - 1));
  Printf.printf "  lookups: %d rpcs, cache %d hits / %d misses\n"
    (Client.lookup_rpcs client)
    (D2_cache.Lookup_cache.hits cache)
    (D2_cache.Lookup_cache.misses cache);
  Printf.printf "  failed ops: %d, verify errors: %d\n%!" !failed !verify_errors;
  if !failed > 0 || !verify_errors > 0 then exit 1

let nodes_term =
  Arg.(value & opt int 3 & info [ "nodes" ] ~docv:"M" ~doc:"Cluster size.")

let port_base_term =
  Arg.(
    value
    & opt int (T.default_port_base ())
    & info [ "port-base" ] ~docv:"PORT"
        ~doc:"Node $(i,i) of the cluster is at 127.0.0.1:PORT+$(i,i).")

let replicas_term =
  Arg.(
    value & opt int 3
    & info [ "replicas" ] ~docv:"R" ~doc:"Fan-out depth requested on puts.")

let duration_term =
  Arg.(
    value & opt float 2.0
    & info [ "duration" ] ~docv:"SECS" ~doc:"How long to replay.")

let users_term =
  Arg.(
    value & opt int 6
    & info [ "users" ] ~docv:"U" ~doc:"Synthetic-trace user count.")

let target_mb_term =
  Arg.(
    value & opt int 4
    & info [ "target-mb" ] ~docv:"MB" ~doc:"Synthetic-trace data-set size.")

let seed_term =
  Arg.(value & opt int 0xd21d & info [ "seed" ] ~docv:"SEED" ~doc:"Trace seed.")

let timeout_term =
  Arg.(
    value & opt float 1.0
    & info [ "rpc-timeout" ] ~docv:"SECS" ~doc:"Per-RPC reply deadline.")

let cmd =
  let doc = "replay a synthetic workload against a live d2d cluster" in
  Cmd.v
    (Cmd.info "d2load" ~doc)
    Term.(
      const run $ nodes_term $ port_base_term $ replicas_term $ duration_term
      $ users_term $ target_mb_term $ seed_term $ timeout_term)

let () = exit (Cmd.eval cmd)
