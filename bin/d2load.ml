(* d2load: replay a synthetic Harvard-trace segment against a live
   d2d cluster and report throughput and latency percentiles.

   Ops map onto the block protocol directly: Create/Write put the
   block, Read gets it back and verifies the payload (a block the
   trace reads before any write is first seeded with a put), Delete
   removes the file's first block.  Every get is checked against what
   this process stored, so a non-zero exit means real data loss, not
   just noise.

   The replay is pipelined: a window of [--in-flight] operations stays
   open on one persistent connection per node, requests correlated by
   id and coalesced into shared transport writes.  Two ops on the same
   key never overlap (the issuer stalls on a read-after-write hazard),
   so verification stays exact at any depth.  [--sweep] replays the
   workload at several depths and prints the saturation curve;
   [--min-ops-s] turns the best depth's throughput into an exit-code
   floor for CI. *)

open Cmdliner
module T = D2_net.Transport_unix
module Client = D2_net.Client.Make (D2_net.Transport_unix)
module Bootstrap = D2_net.Bootstrap
module Key = D2_keyspace.Key
module Rng = D2_util.Rng
module Stats = D2_util.Stats
module Op = D2_trace.Op
module Harvard = D2_trace.Harvard
module Keymap = D2_trace.Keymap

let payload_of key bytes =
  let n = max 1 (min bytes D2_net.Wire.max_payload) in
  let tag = Key.to_string key in
  let tl = String.length tag in
  let b = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    let k = min tl (n - !off) in
    Bytes.blit_string tag 0 b !off k;
    off := !off + k
  done;
  Bytes.unsafe_to_string b

let default_inflight () =
  match Sys.getenv_opt "D2_NET_INFLIGHT" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some w when w >= 1 -> w
      | _ ->
          prerr_endline "d2load: ignoring malformed D2_NET_INFLIGHT";
          16)
  | None -> 16

let env_quorum name =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some q when q >= 1 -> q
      | _ ->
          Printf.eprintf "d2load: ignoring malformed %s\n" name;
          1)
  | None -> 1

let default_alpha () =
  match Sys.getenv_opt "D2_ROUTE_ALPHA" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some a when a >= 1 -> a
      | _ ->
          prerr_endline "d2load: ignoring malformed D2_ROUTE_ALPHA";
          1)
  | None -> 1

type run_stats = {
  window : int;
  run_ops : int;
  elapsed : float;
  lats : float array; (* sorted, seconds *)
}

let ops_s r = if r.elapsed > 0.0 then float_of_int r.run_ops /. r.elapsed else 0.0
let lat_ms r p = 1000.0 *. Stats.percentile r.lats p

(* One timed replay at pipeline depth [window].  Ops issue while the
   window has room; an op whose key is already in flight queues behind
   that key (same-key ops must not overlap or read verification races
   the write) and issues from the predecessor's completion, so a run
   of hot-key ops never stalls the rest of the pipeline.  Between
   issue bursts the client polls, flushing the coalesced batch and
   delivering replies.  Returns once the deadline passed and every
   issued and queued op concluded. *)
let replay client trace keymap stored ~window ~duration ~ops_limit ~failed
    ~verify_errors =
  let n_ops = Array.length trace.Op.ops in
  (* keys with an op currently issued *)
  let active : unit Key.Table.t = Key.Table.create (4 * window) in
  (* key -> ops waiting for the in-flight op on that key *)
  let blocked : Op.op Queue.t Key.Table.t = Key.Table.create (4 * window) in
  let lat = ref (Array.make 4096 0.0) in
  let done_ops = ref 0 and outstanding = ref 0 in
  let lookahead = max (4 * window) 64 in
  let t_start = Unix.gettimeofday () in
  let deadline = t_start +. duration in
  let stop_issuing = ref false in
  let i = ref 0 in
  let record t0 =
    if !done_ops = Array.length !lat then begin
      let b = Array.make (2 * !done_ops) 0.0 in
      Array.blit !lat 0 b 0 !done_ops;
      lat := b
    end;
    !lat.(!done_ops) <- Unix.gettimeofday () -. t0;
    incr done_ops
  in
  (* Issue one trace op against a key that is NOT currently in flight.
     Completion pops the key's queue and issues the successor, keeping
     per-key order exact. *)
  let rec issue (op : Op.op) key =
    Key.Table.replace active key ();
    let t0 = Unix.gettimeofday () in
    let finish () =
      record t0;
      decr outstanding;
      match Key.Table.find_opt blocked key with
      | None -> Key.Table.remove active key
      | Some q ->
          let next = Queue.pop q in
          if Queue.is_empty q then Key.Table.remove blocked key;
          issue next key
    in
    let put_block data =
      Client.put_async client ~key ~data (fun r ->
          (match r with
          | `Ok _ -> Key.Table.replace stored key data
          | `Failed -> incr failed);
          finish ())
    in
    match op.Op.kind with
    | Op.Write | Op.Create -> put_block (payload_of key op.Op.bytes)
    | Op.Read -> (
        match Key.Table.find_opt stored key with
        | None -> put_block (payload_of key op.Op.bytes)
        | Some expect ->
            Client.get_async client ~key (fun r ->
                (match r with
                | `Found data ->
                    if not (String.equal data expect) then incr verify_errors
                | `Missing -> incr verify_errors
                | `Failed -> incr failed);
                finish ()))
    | Op.Delete ->
        Client.remove_async client ~key (fun r ->
            (match r with
            | `Ok _ -> Key.Table.remove stored key
            | `Failed -> incr failed);
            finish ())
  in
  while (not !stop_issuing) || !outstanding > 0 do
    while
      (not !stop_issuing)
      && Client.in_flight client < window
      && !outstanding < lookahead
    do
      if
        Unix.gettimeofday () >= deadline
        || (ops_limit > 0 && !i >= ops_limit)
      then stop_issuing := true
      else begin
        let op = trace.Op.ops.(!i mod n_ops) in
        incr i;
        let key = Keymap.key_of_op keymap op in
        let skip =
          (* A delete of a block we never stored is a no-op — don't
             burn a window slot on it (matches the pre-pipelined
             replay, which issued nothing for those). *)
          op.Op.kind = Op.Delete
          && (not (Key.Table.mem stored key))
          && not (Key.Table.mem active key)
        in
        if not skip then begin
          incr outstanding;
          if Key.Table.mem active key then begin
            let q =
              match Key.Table.find_opt blocked key with
              | Some q -> q
              | None ->
                  let q = Queue.create () in
                  Key.Table.replace blocked key q;
                  q
            in
            Queue.push op q
          end
          else issue op key
        end
      end
    done;
    Client.poll client ~timeout:0.001
  done;
  let elapsed = Unix.gettimeofday () -. t_start in
  let lats = Array.sub !lat 0 !done_ops in
  Array.sort compare lats;
  { window; run_ops = !done_ops; elapsed; lats }

(* Replaying is deterministic per key (the hazard queue serializes
   same-key ops in trace order), so the final stored table of a clean
   [--ops N] run is a pure function of (trace, N): fold the first N
   considered ops — Write/Create bind the payload, a Read of an
   unbound key seeds it (the replay's seed-put), Delete unbinds.  A
   fresh process can therefore recompute what an earlier run stored
   and check every block survived — this is the crash-recovery
   acceptance check, run against daemons that were killed and
   restarted in between. *)
let expected_table trace keymap ~ops_limit =
  let n = Array.length trace.Op.ops in
  let expected : string Key.Table.t = Key.Table.create 4096 in
  for j = 0 to ops_limit - 1 do
    let op = trace.Op.ops.(j mod n) in
    let key = Keymap.key_of_op keymap op in
    match op.Op.kind with
    | Op.Write | Op.Create ->
        Key.Table.replace expected key (payload_of key op.Op.bytes)
    | Op.Read ->
        if not (Key.Table.mem expected key) then
          Key.Table.replace expected key (payload_of key op.Op.bytes)
    | Op.Delete -> Key.Table.remove expected key
  done;
  expected

let verify client trace keymap ~ops_limit ~window =
  let expected = expected_table trace keymap ~ops_limit in
  let total = Key.Table.length expected in
  let missing = ref 0 and mismatched = ref 0 and failed = ref 0 in
  let outstanding = ref 0 in
  Key.Table.iter
    (fun key expect ->
      while Client.in_flight client >= window do
        Client.poll client ~timeout:0.001
      done;
      incr outstanding;
      Client.get_async client ~key (fun r ->
          (match r with
          | `Found data ->
              if not (String.equal data expect) then incr mismatched
          | `Missing -> incr missing
          | `Failed -> incr failed);
          decr outstanding))
    expected;
  while !outstanding > 0 do
    Client.poll client ~timeout:0.001
  done;
  Printf.printf
    "d2load: verified %d expected blocks: %d missing, %d mismatched, %d \
     failed\n%!"
    total !missing !mismatched !failed;
  !missing = 0 && !mismatched = 0 && !failed = 0 && total > 0

let run nodes port_base replicas quorum_r quorum_w duration users target_mb
    seed rpc_timeout inflight alpha sweep min_ops_s ops_limit verify_seed
    volume =
  if alpha < 1 then (
    Printf.eprintf "d2load: --alpha must be >= 1\n";
    exit 2);
  if quorum_r < 1 || quorum_r > replicas || quorum_w < 1 || quorum_w > replicas
  then (
    Printf.eprintf "d2load: quorums must be in [1, --replicas]\n";
    exit 2);
  (* Block payloads (~8 KB) exceed the minor-allocation cutoff and
     land on the major heap; at 100k ops/s the default pacing spends a
     measurable slice of every cycle in major collections.  Trade
     memory for mutator time — this is a load generator. *)
  Gc.set
    {
      (Gc.get ()) with
      Gc.minor_heap_size = 4 * 1024 * 1024;
      space_overhead = 400;
    };
  let windows =
    match sweep with
    | [] -> [ inflight ]
    | ws -> List.filter (fun w -> w >= 1) ws
  in
  if windows = [] then (
    Printf.eprintf "d2load: --sweep needs at least one depth >= 1\n";
    exit 2);
  let ep =
    T.create
      ~node:(Bootstrap.client_handle 0)
      ~addr_of:(T.loopback ~port_base ~n:nodes)
      ~listen:false ()
  in
  let client =
    Client.create ep ~replicas ~quorum_r ~quorum_w ~rpc_timeout ~alpha
      ~seeds:(List.init nodes Fun.id)
      ()
  in
  let params =
    {
      Harvard.default_params with
      users;
      days = 1.0;
      target_bytes = target_mb * 1024 * 1024;
    }
  in
  let trace_seed = match verify_seed with Some s -> s | None -> seed in
  let trace = Harvard.generate ~rng:(Rng.create trace_seed) ~params () in
  if Array.length trace.Op.ops = 0 then (
    Printf.eprintf "d2load: empty trace\n";
    exit 2);
  let keymap = Keymap.create Keymap.D2 ~volume in
  (match verify_seed with
  | Some _ ->
      if ops_limit <= 0 then begin
        Printf.eprintf "d2load: --verify-seed needs --ops\n";
        exit 2
      end;
      let ok = verify client trace keymap ~ops_limit ~window:inflight in
      T.shutdown ep;
      exit (if ok then 0 else 1)
  | None -> ());
  let stored : string Key.Table.t = Key.Table.create 4096 in
  let failed = ref 0 and verify_errors = ref 0 in
  let runs =
    List.map
      (fun window ->
        replay client trace keymap stored ~window ~duration ~ops_limit ~failed
          ~verify_errors)
      windows
  in
  T.shutdown ep;
  let best =
    List.fold_left (fun a r -> if ops_s r > ops_s a then r else a)
      (List.hd runs) runs
  in
  let total_ops = List.fold_left (fun a r -> a + r.run_ops) 0 runs in
  Printf.printf "d2load: %d ops against %d nodes (%.2f s per depth)\n"
    total_ops nodes duration;
  if List.length runs > 1 then begin
    Printf.printf "  saturation curve:\n";
    Printf.printf "  %-10s %-10s %-8s %-8s %-8s\n" "in-flight" "ops/s" "p50ms"
      "p95ms" "p99ms";
    List.iter
      (fun r ->
        Printf.printf "  %-10d %-10.0f %-8.2f %-8.2f %-8.2f\n" r.window
          (ops_s r) (lat_ms r 50.0) (lat_ms r 95.0) (lat_ms r 99.0))
      runs
  end;
  Printf.printf
    "  best: %.0f ops/s at in-flight=%d (p50=%.2f p95=%.2f p99=%.2f ms)\n"
    (ops_s best) best.window (lat_ms best 50.0) (lat_ms best 95.0)
    (lat_ms best 99.0);
  let cache = Client.cache client in
  Printf.printf "  lookups: %d rpcs, cache %d hits / %d misses\n"
    (Client.lookup_rpcs client)
    (D2_cache.Lookup_cache.hits cache)
    (D2_cache.Lookup_cache.misses cache);
  Printf.printf "  failed ops: %d, verify errors: %d\n%!" !failed !verify_errors;
  if !failed > 0 || !verify_errors > 0 then exit 1;
  if min_ops_s > 0.0 && ops_s best < min_ops_s then begin
    Printf.eprintf "d2load: best %.0f ops/s is below the %.0f ops/s floor\n"
      (ops_s best) min_ops_s;
    exit 1
  end

let nodes_term =
  Arg.(value & opt int 3 & info [ "nodes" ] ~docv:"M" ~doc:"Cluster size.")

let port_base_term =
  Arg.(
    value
    & opt int (T.default_port_base ())
    & info [ "port-base" ] ~docv:"PORT"
        ~doc:"Node $(i,i) of the cluster is at 127.0.0.1:PORT+$(i,i).")

let replicas_term =
  Arg.(
    value & opt int 3
    & info [ "replicas" ] ~docv:"R" ~doc:"Fan-out depth requested on puts.")

let quorum_r_term =
  Arg.(
    value
    & opt int (env_quorum "D2_QUORUM_R")
    & info [ "quorum-r" ] ~docv:"Q"
        ~doc:"Read quorum: at 2+ every get consults Q replicas through the \
              owner and returns the version-dominating copy, read-repairing \
              stale replicas (default from D2_QUORUM_R, else 1).")

let quorum_w_term =
  Arg.(
    value
    & opt int (env_quorum "D2_QUORUM_W")
    & info [ "quorum-w" ] ~docv:"Q"
        ~doc:"Write quorum: a put acked by fewer than Q replicas counts as \
              failed and is retried (default from D2_QUORUM_W, else 1).")

let duration_term =
  Arg.(
    value & opt float 2.0
    & info [ "duration" ] ~docv:"SECS" ~doc:"How long to replay (per depth).")

let users_term =
  Arg.(
    value & opt int 6
    & info [ "users" ] ~docv:"U" ~doc:"Synthetic-trace user count.")

let target_mb_term =
  Arg.(
    value & opt int 4
    & info [ "target-mb" ] ~docv:"MB" ~doc:"Synthetic-trace data-set size.")

let seed_term =
  Arg.(value & opt int 0xd21d & info [ "seed" ] ~docv:"SEED" ~doc:"Trace seed.")

let timeout_term =
  Arg.(
    value & opt float 1.0
    & info [ "rpc-timeout" ] ~docv:"SECS" ~doc:"Per-RPC reply deadline.")

let inflight_term =
  Arg.(
    value
    & opt int (default_inflight ())
    & info [ "in-flight" ] ~docv:"W"
        ~doc:"Pipeline depth: operations kept in flight (default from \
              D2_NET_INFLIGHT, else 16).")

let alpha_term =
  Arg.(
    value
    & opt int (default_alpha ())
    & info [ "alpha" ] ~docv:"A"
        ~doc:"Parallel-lookup width: race A iterative lookups through \
              distinct seeds on every cache miss, first owner answer \
              wins (default from D2_ROUTE_ALPHA, else 1).")

let sweep_term =
  Arg.(
    value
    & opt (list int) []
    & info [ "sweep" ] ~docv:"W1,W2,..."
        ~doc:"Replay at each depth in turn and print the saturation \
              curve (overrides --in-flight).")

let min_ops_s_term =
  Arg.(
    value & opt float 0.0
    & info [ "min-ops-s" ] ~docv:"OPS"
        ~doc:"Exit non-zero unless the best depth sustains at least \
              OPS operations per second (0 = no floor).")

let ops_term =
  Arg.(
    value & opt int 0
    & info [ "ops" ] ~docv:"N"
        ~doc:"Stop after considering N trace operations (cycling the \
              trace), making the run's final stored state deterministic — \
              the prerequisite for --verify-seed.  0 = run to --duration.")

let verify_seed_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "verify-seed" ] ~docv:"SEED"
        ~doc:"Instead of replaying, recompute the final stored state of an \
              earlier $(b,--seed) SEED $(b,--ops) N run (pass the same \
              --ops, --users, --target-mb, --volume) and get-and-verify \
              every expected block.  Exits non-zero on any missing or \
              corrupt block — the crash-recovery check.")

let volume_term =
  Arg.(
    value & opt string "/d2load"
    & info [ "volume" ] ~docv:"PATH"
        ~doc:"Keymap volume prefix.  Distinct volumes give disjoint key \
              sets, so an interfering load (e.g. one run only to be \
              killed) can target its own namespace.")

let cmd =
  let doc = "replay a synthetic workload against a live d2d cluster" in
  Cmd.v
    (Cmd.info "d2load" ~doc)
    Term.(
      const run $ nodes_term $ port_base_term $ replicas_term $ quorum_r_term
      $ quorum_w_term $ duration_term $ users_term $ target_mb_term $ seed_term
      $ timeout_term $ inflight_term $ alpha_term $ sweep_term $ min_ops_s_term
      $ ops_term $ verify_seed_term $ volume_term)

let () = exit (Cmd.eval cmd)
